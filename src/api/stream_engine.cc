#include "api/stream_engine.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "operators/sink.h"
#include "operators/source.h"
#include "placement/chain_vo_builder.h"
#include "placement/producer_annotation.h"
#include "placement/segment_vo_builder.h"
#include "placement/static_queue_placement.h"
#include "stats/capacity.h"
#include "util/logging.h"

namespace flexstream {

const char* ExecutionModeToString(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSourceDriven:
      return "source-driven";
    case ExecutionMode::kDirect:
      return "di";
    case ExecutionMode::kGts:
      return "gts";
    case ExecutionMode::kOts:
      return "ots";
    case ExecutionMode::kHmts:
      return "hmts";
  }
  return "unknown";
}

const char* PlacementKindToString(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kStallAvoiding:
      return "stall-avoiding";
    case PlacementKind::kChain:
      return "chain";
    case PlacementKind::kSegment:
      return "segment";
  }
  return "unknown";
}

const char* QueuePathModeToString(QueuePathMode mode) {
  switch (mode) {
    case QueuePathMode::kAuto:
      return "auto";
    case QueuePathMode::kForceMpsc:
      return "force-mpsc";
  }
  return "unknown";
}

bool ExecutionModeFromString(const std::string& name, ExecutionMode* mode) {
  for (ExecutionMode m :
       {ExecutionMode::kSourceDriven, ExecutionMode::kDirect,
        ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    if (name == ExecutionModeToString(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

bool PlacementKindFromString(const std::string& name, PlacementKind* kind) {
  for (PlacementKind k : {PlacementKind::kStallAvoiding, PlacementKind::kChain,
                          PlacementKind::kSegment}) {
    if (name == PlacementKindToString(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

bool QueuePathModeFromString(const std::string& name, QueuePathMode* mode) {
  for (QueuePathMode m : {QueuePathMode::kAuto, QueuePathMode::kForceMpsc}) {
    if (name == QueuePathModeToString(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

StreamEngine::StreamEngine(QueryGraph* graph) : graph_(graph) {
  CHECK(graph != nullptr);
}

StreamEngine::~StreamEngine() {
  Stop();
  // Operators hold a raw pointer to run_status_; the graph outlives the
  // engine, so detach before the member dies.
  for (Node* node : graph_->nodes()) {
    if (Operator* op = dynamic_cast<Operator*>(node)) {
      op->SetRunStatus(nullptr);
    }
  }
}

void StreamEngine::CollectSinks() {
  sinks_.clear();
  for (Node* node : graph_->nodes()) {
    if (Sink* sink = dynamic_cast<Sink*>(node)) {
      if (node->fan_in() > 0) sinks_.push_back(sink);
    }
  }
}

Status StreamEngine::ComputeQueueEdges(
    const EngineOptions& options,
    std::vector<std::pair<Node*, Operator*>>* edges) {
  edges->clear();
  switch (options.mode) {
    case ExecutionMode::kSourceDriven:
      return Status::Ok();
    case ExecutionMode::kDirect:
      for (Node* node : graph_->nodes()) {
        if (!node->is_source()) continue;
        for (const auto& edge : node->outputs()) {
          edges->emplace_back(node, edge.target);
        }
      }
      return Status::Ok();
    case ExecutionMode::kGts:
    case ExecutionMode::kOts:
      // Full decoupling: every operator is decoupled (Section 6.4). Sinks
      // are not scheduled units — they consume results via DI from the
      // operator that produced them, so results surface the moment the
      // producing operator runs (Figure 10's FIFO curve depends on this).
      for (Node* node : graph_->nodes()) {
        if (node->is_queue()) continue;
        for (const auto& edge : node->outputs()) {
          if (static_cast<const Node*>(edge.target)->is_sink()) continue;
          edges->emplace_back(node, edge.target);
        }
      }
      return Status::Ok();
    case ExecutionMode::kHmts: {
      // Derive d(v) from source metadata when available; measured
      // statistics remain the fallback.
      (void)PropagateRates(graph_);
      Partitioning placed = [&] {
        switch (options.placement) {
          case PlacementKind::kChain:
            return ChainVoPlacement(*graph_);
          case PlacementKind::kSegment:
            return SegmentVoPlacement(*graph_);
          case PlacementKind::kStallAvoiding:
          default:
            return StaticQueuePlacement(*graph_);
        }
      }();
      // Executable placements always decouple after sources: the source's
      // autonomous thread must never execute partition operators (it
      // would race with the partition's own worker). Remove sources from
      // their groups, then re-split each group into connected components
      // (a group held together only by its source falls apart).
      // Placement-solo operators (shard replicas, src/api/shard.h) are
      // treated like sources: pre-assigned their own group and excluded
      // from flood-fill, so every replica gets its own partition/thread
      // and the split/merge stay with their surrounding components.
      auto is_solo = [](const Node* n) {
        const auto* op = dynamic_cast<const Operator*>(n);
        return op != nullptr && op->placement_solo();
      };
      std::unordered_map<const Node*, int> assignment;
      int next_group = 0;
      for (Node* node : graph_->nodes()) {
        if (node->is_source() || is_solo(node)) {
          assignment[node] = next_group++;
        }
      }
      std::unordered_set<const Node*> visited;
      for (Node* node : graph_->nodes()) {
        if (node->is_source() || is_solo(node) || visited.count(node)) {
          continue;
        }
        const int old_group = placed.GroupOf(node);
        if (old_group < 0) continue;
        // Flood-fill the component of `node` within its original group,
        // over non-source members only.
        const int component = next_group++;
        std::vector<Node*> frontier{node};
        visited.insert(node);
        while (!frontier.empty()) {
          Node* n = frontier.back();
          frontier.pop_back();
          assignment[n] = component;
          auto visit = [&](Node* other) {
            if (other->is_source() || is_solo(other) || visited.count(other)) {
              return;
            }
            if (placed.GroupOf(other) != old_group) return;
            visited.insert(other);
            frontier.push_back(other);
          };
          for (const auto& edge : n->outputs()) {
            visit(static_cast<Node*>(edge.target));
          }
          for (const auto& edge : n->inputs()) {
            visit(edge.source);
          }
        }
      }
      partitioning_ = std::make_unique<Partitioning>(
          Partitioning::FromAssignment(graph_, assignment));
      Status s = partitioning_->Validate();
      if (!s.ok()) return s;
      for (auto& edge : partitioning_->CrossEdges()) {
        edges->push_back(edge);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status StreamEngine::BuildExecutors(const EngineOptions& options) {
  gts_.reset();
  ots_.reset();
  hmts_.reset();
  switch (options.mode) {
    case ExecutionMode::kSourceDriven:
      // No scheduler at all; serialize shared operators since several
      // source threads may traverse them concurrently.
      for (Node* node : graph_->nodes()) {
        if (Operator* op = dynamic_cast<Operator*>(node)) {
          if (!node->is_source()) op->SetSerializedReceive(true);
        }
      }
      return Status::Ok();
    case ExecutionMode::kDirect:
    case ExecutionMode::kGts:
      gts_ = std::make_unique<GtsExecutor>(queues_, options.strategy,
                                           options.partition);
      gts_->SetRunStatus(&run_status_);
      return Status::Ok();
    case ExecutionMode::kOts:
      // Sinks run via DI inside their producers' operator threads; a sink
      // shared by operators in different threads needs its Receive
      // serialized.
      for (Node* node : graph_->nodes()) {
        if (node->is_sink() && node->fan_in() > 1) {
          if (Operator* op = dynamic_cast<Operator*>(node)) {
            op->SetSerializedReceive(true);
          }
        }
      }
      ots_ = std::make_unique<OtsExecutor>(queues_, options.partition);
      ots_->SetRunStatus(&run_status_);
      return Status::Ok();
    case ExecutionMode::kHmts: {
      CHECK(partitioning_ != nullptr);
      // Group entry queues by the partition of their consumer.
      std::map<int, std::vector<QueueOp*>> by_group;
      for (QueueOp* queue : queues_) {
        CHECK_EQ(queue->fan_out(), 1u);
        const Node* consumer =
            static_cast<const Node*>(queue->outputs()[0].target);
        const int group = partitioning_->GroupOf(consumer);
        if (group < 0) {
          return Status::Internal("queue consumer not in any partition: " +
                                  consumer->DebugString());
        }
        by_group[group].push_back(queue);
      }
      std::vector<HmtsExecutor::PartitionSpec> specs;
      specs.reserve(by_group.size());
      for (auto& [group, group_queues] : by_group) {
        HmtsExecutor::PartitionSpec spec;
        spec.name = "p" + std::to_string(group);
        spec.queues = std::move(group_queues);
        spec.strategy = options.strategy;
        spec.priority = 0.0;
        specs.push_back(std::move(spec));
      }
      hmts_ = std::make_unique<HmtsExecutor>(std::move(specs), options.ts,
                                             options.partition);
      hmts_->SetRunStatus(&run_status_);
      // Rebuilds (recovery, SwitchTo) keep the controller's stall
      // annotation on the fresh level-3 scheduler.
      if (diagnostic_annotator_ != nullptr) {
        hmts_->thread_scheduler().SetStallAnnotator(diagnostic_annotator_);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status StreamEngine::Configure(const EngineOptions& options) {
  if (configured_) {
    return Status::FailedPrecondition(
        "engine already configured; use SwitchTo or Deconfigure");
  }
  if (!graph_->Queues().empty()) {
    return Status::FailedPrecondition(
        "graph already contains queues; StreamEngine owns queue placement");
  }
  Status s = graph_->Validate();
  if (!s.ok()) return s;

  std::vector<std::pair<Node*, Operator*>> edges;
  s = ComputeQueueEdges(options, &edges);
  if (!s.ok()) return s;

  queues_.clear();
  for (auto& [from, to] : edges) {
    QueueOp* queue = graph_->Add<QueueOp>(
        "q" + std::to_string(next_queue_id_++), options.queue_ring_capacity);
    s = graph_->InsertBetween(from, queue, to);
    if (!s.ok()) return s;
    queues_.push_back(queue);
  }
  // Queues fed by exactly one producing context (one upstream partition or
  // one source — the engine's one-queue-per-edge layout guarantees this)
  // get the lock-free SPSC enqueue path, unless the caller pinned the
  // mutex path (differential testing of both queue implementations).
  if (options.queue_path == QueuePathMode::kForceMpsc) {
    for (QueueOp* queue : queues_) queue->SetSingleProducer(false);
  } else {
    AnnotateSingleProducerQueues(queues_, partitioning_.get());
  }
  // Bounds are applied *after* the single-producer annotation so a
  // kShedOldest bound's forced MPSC path is not re-annotated away.
  if (options.queue_max_elements != 0) {
    for (QueueOp* queue : queues_) {
      queue->SetBound(options.queue_max_elements, options.overload_policy,
                      options.block_wait_timeout);
    }
  }
  // Batch execution path (DESIGN.md §11): sources accumulate pushes into
  // TupleBatches and the placed queues forward each drained run as one
  // downstream ReceiveBatch call. A batch size of 1 (the default) keeps
  // the per-tuple path everywhere.
  for (Node* node : graph_->nodes()) {
    if (Source* source = dynamic_cast<Source*>(node)) {
      source->SetEmitBatchSize(options.emit_batch_size);
    }
  }
  if (options.emit_batch_size > 1) {
    for (QueueOp* queue : queues_) queue->SetBatchDelivery(true);
  }
  // Columnar batch layer (DESIGN.md §17): sources scatter into typed
  // ColumnarBatches and declared schemas are pushed through the topology
  // in topological order so downstream operators know their column layout
  // at configure time. Purely advisory — batches are self-describing, so
  // a missing schema only costs the typed fast path, never correctness.
  if (options.columnar && options.emit_batch_size > 1) {
    for (Node* node : graph_->nodes()) {
      if (Source* source = dynamic_cast<Source*>(node)) {
        source->SetColumnarEmit(true);
      }
    }
    Result<std::vector<Node*>> topo = graph_->TopologicalOrder();
    if (topo.ok()) {
      for (Node* node : *topo) {
        Operator* op = dynamic_cast<Operator*>(node);
        if (op == nullptr) continue;
        if (!node->is_source() && op->static_output_schema() == nullptr) {
          // Collect per-port input schemas from the already-visited
          // upstream nodes (nullptr where unknown).
          std::vector<SchemaPtr> input_schemas;
          for (const Node::InEdge& in : node->inputs()) {
            SchemaPtr upstream_schema;
            if (Operator* up = dynamic_cast<Operator*>(in.source)) {
              upstream_schema = up->static_output_schema();
            }
            const size_t port = in.port < 0 ? 0 : static_cast<size_t>(in.port);
            if (input_schemas.size() <= port) {
              input_schemas.resize(port + 1);
            }
            if (input_schemas[port] == nullptr) {
              input_schemas[port] = std::move(upstream_schema);
            } else if (upstream_schema != nullptr &&
                       *input_schemas[port] != *upstream_schema) {
              // Conflicting producers on one port: no static schema.
              input_schemas[port] = nullptr;
            }
          }
          op->SetStaticOutputSchema(op->InferOutputSchema(input_schemas));
        }
      }
    }
  }
  // Every operator (queues included — their kBlock waits poll it) reports
  // failures into the engine's run status and shares the retry backoff
  // policy.
  run_status_.Reset();
  for (Node* node : graph_->nodes()) {
    if (Operator* op = dynamic_cast<Operator*>(node)) {
      op->SetRunStatus(&run_status_);
      op->SetRetryBackoff(options.retry_backoff);
    }
  }

  s = BuildExecutors(options);
  if (!s.ok()) return s;

  CollectSinks();

  // Checkpointing last: the queues are placed, so barrier channels line up
  // with the final topology.
  if (options.checkpoint_epoch_interval > 0) {
    RecoveryManager::Options ropts;
    ropts.epoch_interval = options.checkpoint_epoch_interval;
    ropts.max_attempts = options.max_recovery_attempts;
    ropts.replay_buffer_max_elements = options.replay_buffer_max_elements;
    ropts.durable_dir = options.durable_checkpoint_dir;
    ropts.storage_env = options.storage_env;
    ropts.durable_retain_epochs = options.durable_retain_epochs;
    recovery_ = std::make_unique<RecoveryManager>(ropts);
    s = recovery_->Arm(graph_);
    if (!s.ok()) {
      recovery_.reset();
      return s;
    }
  }

  options_ = options;
  configured_ = true;
  started_ = false;
  return Status::Ok();
}

Status StreamEngine::Start() {
  if (!configured_) return Status::FailedPrecondition("not configured");
  if (started_) return Status::FailedPrecondition("already started");
  if (gts_ != nullptr) gts_->Start();
  if (ots_ != nullptr) ots_->Start();
  if (hmts_ != nullptr) hmts_->Start();
  started_ = true;
  return Status::Ok();
}

Result<uint64_t> StreamEngine::ColdRestart() {
  if (!configured_) {
    return Status::FailedPrecondition("cold restart: engine not configured");
  }
  if (started_) {
    return Status::FailedPrecondition("cold restart: engine already started");
  }
  if (recovery_ == nullptr || recovery_->snapshot_store() == nullptr) {
    return Status::FailedPrecondition(
        "cold restart: no durable checkpoint directory configured");
  }
  return recovery_->RestoreFromDisk();
}

bool StreamEngine::AllPartitionsDone() const {
  if (gts_ != nullptr && !gts_->Done()) return false;
  if (ots_ != nullptr && !ots_->Done()) return false;
  if (hmts_ != nullptr && !hmts_->Done()) return false;
  return true;
}

StreamEngine::WaitOutcome StreamEngine::WaitOnce(const TimePoint* deadline) {
  // Sliced sink waits so a mid-run operator failure ends the wait instead
  // of hanging forever on a sink that will never close.
  for (Sink* sink : sinks_) {
    while (true) {
      if (run_status_.failed()) return WaitOutcome::kFailed;
      Duration slice = std::chrono::milliseconds(10);
      if (deadline != nullptr) {
        const Duration remaining = *deadline - Now();
        if (remaining <= Duration::zero()) {
          LOG(WARNING) << "wait timed out waiting for sink '" << sink->name()
                       << "'; partition snapshot:\n"
                       << DiagnosticSnapshot();
          return WaitOutcome::kTimedOut;
        }
        slice = std::min(remaining, slice);
      }
      if (sink->WaitUntilClosedFor(slice)) break;
    }
  }
  while (!AllPartitionsDone()) {
    if (run_status_.failed()) return WaitOutcome::kFailed;
    if (deadline != nullptr && Now() >= *deadline) {
      LOG(WARNING) << "wait timed out waiting for partitions to drain; "
                      "partition snapshot:\n"
                   << DiagnosticSnapshot();
      return WaitOutcome::kTimedOut;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // A failure can arrive after EOS has propagated (e.g. poisoned data the
  // sinks never saw); a "completed" run with a recorded failure is still a
  // failed run and recovers like a mid-run failure.
  return run_status_.failed() ? WaitOutcome::kFailed : WaitOutcome::kFinished;
}

void StreamEngine::WaitUntilFinished() {
  while (true) {
    switch (WaitOnce(nullptr)) {
      case WaitOutcome::kFinished:
        Stop();
        return;
      case WaitOutcome::kFailed:
        if (AttemptRecovery()) continue;
        AbortOnFailure();
        return;
      case WaitOutcome::kTimedOut:
        return;  // unreachable without a deadline
    }
  }
}

bool StreamEngine::WaitUntilFinishedFor(Duration timeout) {
  const TimePoint deadline = Now() + timeout;
  while (true) {
    switch (WaitOnce(&deadline)) {
      case WaitOutcome::kFinished:
        Stop();
        return true;
      case WaitOutcome::kFailed:
        if (AttemptRecovery()) continue;
        AbortOnFailure();
        return true;  // run over (abnormally) — see RunResult()
      case WaitOutcome::kTimedOut:
        return false;
    }
  }
}

bool StreamEngine::AttemptRecovery() {
  if (recovery_ == nullptr) return false;
  if (!recovery_->BeginAttempt()) {
    const Status truncation = recovery_->replay_truncation_status();
    LOG(WARNING) << "recovery unavailable ("
                 << (!truncation.ok() ? truncation.message()
                                      : "attempt budget exhausted")
                 << ") after failure: " << run_status_.first().message();
    return false;
  }
  const TimePoint start = Now();
  const uint64_t epoch = recovery_->coordinator().committed_epoch();
  LOG(WARNING) << "operator failure — recovering from committed epoch "
               << epoch << ": " << run_status_.first().message();
  // The SLO controller polls this flag and suspends actuation for the
  // duration of the rebuild (pause -> restore -> restart -> replay).
  // Raising it under the actuation mutex hand-shakes with the live
  // actuation hooks: they hold the mutex for a whole actuation and refuse
  // once the flag is up, so no actuation races the executor teardown.
  {
    std::lock_guard<std::mutex> lock(actuation_mutex_);
    recovering_.store(true, std::memory_order_release);
  }
  // Unwedge any producer blocked on a bounded queue (sticky until the
  // queues reset below), then quiesce the source threads and the workers.
  for (QueueOp* q : queues_) q->CancelProducerWaits();
  recovery_->PauseSources();
  Stop();
  recovery_->RestoreCommittedState();
  run_status_.Reset();
  Status s = BuildExecutors(options_);
  if (s.ok()) s = Start();
  if (!s.ok()) {
    LOG(ERROR) << "recovery restart failed: " << s.message();
    recovery_->ResumeSources();
    recovering_.store(false, std::memory_order_release);
    return false;
  }
  recovery_->ReplaySources();
  recovery_->ResumeSources();
  recovery_->FinishAttempt(
      std::chrono::duration_cast<std::chrono::microseconds>(Now() - start)
          .count());
  recovering_.store(false, std::memory_order_release);
  return true;
}

void StreamEngine::AbortOnFailure() {
  for (QueueOp* q : queues_) q->CancelProducerWaits();
  Stop();
}

std::string StreamEngine::DiagnosticSnapshot() {
  std::vector<Partition*> partitions;
  if (gts_ != nullptr) partitions = gts_->Partitions();
  if (ots_ != nullptr) partitions = ots_->Partitions();
  if (hmts_ != nullptr) partitions = hmts_->Partitions();
  std::string report = partitions.empty() ? "  (no scheduled partitions)\n"
                                          : DescribePartitions(partitions);
  if (diagnostic_annotator_ != nullptr) {
    const std::string note = diagnostic_annotator_();
    if (!note.empty()) report += "  " + note + "\n";
  }
  return report;
}

void StreamEngine::SetDiagnosticAnnotator(
    std::function<std::string()> annotator) {
  diagnostic_annotator_ = std::move(annotator);
  if (hmts_ != nullptr) {
    hmts_->thread_scheduler().SetStallAnnotator(diagnostic_annotator_);
  }
}

Status StreamEngine::SetMaxRunningThreads(int max_running) {
  std::lock_guard<std::mutex> lock(actuation_mutex_);
  if (recovering()) {
    return Status::FailedPrecondition(
        "SetMaxRunningThreads refused: a recovery attempt is in flight; "
        "retry after it completes");
  }
  if (!configured_) {
    return Status::FailedPrecondition(
        "SetMaxRunningThreads refused: engine is not configured");
  }
  if (max_running < 1) {
    return Status::InvalidArgument(
        "SetMaxRunningThreads refused: max_running must be >= 1, got " +
        std::to_string(max_running));
  }
  if (options_.mode != ExecutionMode::kHmts || hmts_ == nullptr) {
    return Status::FailedPrecondition(
        std::string("SetMaxRunningThreads refused: execution mode is ") +
        ExecutionModeToString(options_.mode) +
        " (the level-3 slot pool exists only under hmts)");
  }
  hmts_->thread_scheduler().SetMaxRunning(max_running);
  // Persist so a recovery rebuild (BuildExecutors from options_) keeps it.
  options_.ts.max_running = max_running;
  return Status::Ok();
}

Status StreamEngine::SetEmitBatchSizeLive(size_t batch_size) {
  std::lock_guard<std::mutex> lock(actuation_mutex_);
  if (recovering()) {
    return Status::FailedPrecondition(
        "SetEmitBatchSizeLive refused: a recovery attempt is in flight; "
        "retry after it completes");
  }
  if (!configured_) {
    return Status::FailedPrecondition(
        "SetEmitBatchSizeLive refused: engine is not configured");
  }
  if (batch_size == 0) batch_size = 1;
  for (Node* node : graph_->nodes()) {
    if (Source* source = dynamic_cast<Source*>(node)) {
      source->RequestEmitBatchSize(batch_size);
    }
  }
  for (QueueOp* queue : queues_) queue->SetBatchDelivery(batch_size > 1);
  options_.emit_batch_size = batch_size;
  return Status::Ok();
}

Status StreamEngine::SetOverloadPolicyLive(OverloadPolicy policy) {
  std::lock_guard<std::mutex> lock(actuation_mutex_);
  if (recovering()) {
    return Status::FailedPrecondition(
        "SetOverloadPolicyLive refused: a recovery attempt is in flight; "
        "retry after it completes");
  }
  if (!configured_) {
    return Status::FailedPrecondition(
        "SetOverloadPolicyLive refused: engine is not configured");
  }
  if (options_.queue_max_elements == 0) {
    return Status::FailedPrecondition(
        "SetOverloadPolicyLive refused: queues are unbounded "
        "(queue_max_elements == 0), so there is no overload decision to "
        "govern");
  }
  for (QueueOp* queue : queues_) {
    Status s = queue->SetOverloadPolicyLive(policy);
    if (!s.ok()) return s;
  }
  options_.overload_policy = policy;
  return Status::Ok();
}

int64_t StreamEngine::DroppedElements() const {
  int64_t total = 0;
  for (const QueueOp* q : queues_) total += q->dropped();
  return total;
}

void StreamEngine::Stop() {
  if (gts_ != nullptr) {
    gts_->RequestStop();
    gts_->Join();
  }
  if (ots_ != nullptr) {
    ots_->RequestStop();
    ots_->Join();
  }
  if (hmts_ != nullptr) {
    hmts_->RequestStop();
    hmts_->Join();
  }
  started_ = false;
}

Status StreamEngine::SwitchTo(const EngineOptions& options) {
  if (!configured_) {
    return Status::FailedPrecondition(
        std::string("SwitchTo(-> ") + ExecutionModeToString(options.mode) +
        ") refused: engine is not configured; call Configure first");
  }
  if (recovering()) {
    return Status::FailedPrecondition(
        std::string("SwitchTo(") + ExecutionModeToString(options_.mode) +
        " -> " + ExecutionModeToString(options.mode) +
        ") refused: a recovery attempt is in flight; retry after it "
        "completes");
  }
  if (recovery_ != nullptr) {
    return Status::FailedPrecondition(
        std::string("SwitchTo(") + ExecutionModeToString(options_.mode) +
        " -> " + ExecutionModeToString(options.mode) +
        ") refused: checkpointing is armed (committed epoch " +
        std::to_string(recovery_->coordinator().committed_epoch()) +
        "); a switch would discard barrier alignment and replay buffers — "
        "call Deconfigure first");
  }
  const bool was_started = started_;
  Stop();

  const bool same_structure =
      (options_.mode == ExecutionMode::kGts ||
       options_.mode == ExecutionMode::kOts) &&
      (options.mode == ExecutionMode::kGts ||
       options.mode == ExecutionMode::kOts);
  if (same_structure) {
    // Queues stay in place (the paper's instant OTS <-> GTS switch,
    // Section 4.2.2); only the level-2/3 machinery is rebuilt, so sources
    // may keep pushing throughout.
    Status s = BuildExecutors(options);
    if (!s.ok()) return s;
    options_ = options;
  } else {
    // Structural switch: drain and remove the old queues, then place anew.
    // Contract: sources are paused while this runs (Section 5.1.3).
    Status s = Deconfigure();
    if (!s.ok()) return s;
    s = Configure(options);
    if (!s.ok()) return s;
  }
  if (was_started) return Start();
  return Status::Ok();
}

Status StreamEngine::Deconfigure() {
  if (!configured_) return Status::FailedPrecondition("not configured");
  if (started_) Stop();
  if (recovery_ != nullptr) {
    recovery_->Disarm();
    recovery_.reset();
  }
  // Sources return to per-tuple delivery first; resetting the batch size
  // flushes any pending batch into the still-placed queues so the drain
  // below sees every element.
  for (Node* node : graph_->nodes()) {
    if (Source* source = dynamic_cast<Source*>(node)) {
      source->SetEmitBatchSize(1);
      source->SetColumnarEmit(false);
    }
  }
  // Drain in topological order so elements pushed downstream land in
  // queues that have not been removed yet.
  Result<std::vector<Node*>> order = graph_->TopologicalOrder();
  if (!order.ok()) return order.status();
  for (Node* node : *order) {
    QueueOp* queue = dynamic_cast<QueueOp*>(node);
    if (queue == nullptr || queue->fan_in() == 0) continue;
    while (queue->HeadSeq() != QueueOp::kNoSeq) {
      queue->DrainBatch(1024);
    }
    queue->SetEnqueueListener(nullptr);
    Status s = graph_->SpliceOut(queue);
    if (!s.ok()) return s;
  }
  for (Node* node : graph_->nodes()) {
    if (Operator* op = dynamic_cast<Operator*>(node)) {
      op->SetSerializedReceive(false);
      op->SetRunStatus(nullptr);
    }
  }
  gts_.reset();
  ots_.reset();
  hmts_.reset();
  queues_.clear();
  partitioning_.reset();
  sinks_.clear();
  configured_ = false;
  return Status::Ok();
}

Status StreamEngine::ResetForRerun() {
  Status s = Deconfigure();
  if (!s.ok()) return s;
  graph_->ResetAll();
  return Status::Ok();
}

size_t StreamEngine::QueuedElements() const {
  size_t total = 0;
  for (const QueueOp* q : queues_) total += q->Size();
  return total;
}

size_t StreamEngine::WorkerThreadCount() const {
  switch (options_.mode) {
    case ExecutionMode::kSourceDriven:
      return 0;
    case ExecutionMode::kDirect:
    case ExecutionMode::kGts:
      return 1;
    case ExecutionMode::kOts:
      return ots_ != nullptr ? ots_->partitions().size() : 0;
    case ExecutionMode::kHmts:
      return hmts_ != nullptr ? hmts_->partition_count() : 0;
  }
  return 0;
}

}  // namespace flexstream

// Key-partitioned operator sharding (DESIGN.md §13).
//
// ShardOperator() rewrites a query graph in place: it clones a (typically
// stateful) operator into N replicas, puts a hash-partitioning Router in
// front of each input port (co-partitioning multi-input operators on their
// per-port key attributes), and re-unifies the replica outputs through a
// MergeOperator wired to the original's downstream consumers. The original
// operator is left in the graph but fully detached (it is the "prototype"
// — state repartitioning dispatches on it).
//
//     src ──► split(Router) ──► shard0 ─┐
//                        └────► shard1 ─┴─► merge ──► downstream...
//
// Ordered mode (the default for single-input operators): the Router stamps
// every element with a global arrival sequence number, replicas propagate
// the stamp onto their outputs, and the Merge releases elements in exact
// stamp order — the sharded graph's output *sequence* equals the unsharded
// one's, so exact-sequence oracles keep applying. Multi-input operators
// (joins) must use unordered (arrival-order) merging: a replica drains its
// input ports in scheduler-dependent order, so no per-lane monotone stamp
// exists.
//
// Replicas are flagged placement-solo, so HMTS gives each shard its own
// partition/thread; GTS/OTS pick that up from the queue structure alone.
// Each replica is an independent StatefulOperator — checkpoint snapshots
// are taken per replica, and RepartitionShardSnapshots() rebuilds them for
// a different N across a restore.

#ifndef FLEXSTREAM_API_SHARD_H_
#define FLEXSTREAM_API_SHARD_H_

#include <cstddef>
#include <vector>

#include "graph/query_graph.h"
#include "operators/merge.h"
#include "operators/router.h"
#include "recovery/state_snapshot.h"
#include "util/status.h"

namespace flexstream {

struct ShardOptions {
  /// Number of replicas to create (>= 1).
  size_t shards = 2;
  /// The key attribute hashed for partitioning, one entry per input port
  /// of the sharded operator (a join lists its left key, then its right
  /// key). A single entry is reused for every port.
  std::vector<size_t> key_attrs = {0};
  /// Ordered merge (exact split-point sequence at the output) vs.
  /// arrival-order merge (nondeterministic interleaving, no buffering).
  /// Ordered requires a single-input operator.
  bool ordered = true;
  /// Rewrite generation, reflected in the split/replica/merge names
  /// ("op.shard0" at generation 0, "op.g2.shard0" at generation 2). Graph
  /// nodes are never destroyed, so each ResizeShard leaves the previous
  /// generation's nodes detached in the graph; distinct names keep
  /// diagnostics and kill-by-name test machinery unambiguous. Callers
  /// normally leave this at 0 — ResizeShard bumps it internally.
  int generation = 0;
};

/// What ShardOperator created, for wiring further test machinery (chaos
/// kill targets, per-replica assertions). All pointers are graph-owned.
struct ShardHandle {
  Operator* original = nullptr;          // detached prototype
  std::vector<Router*> splits;           // one per input port
  std::vector<Operator*> replicas;       // size == options.shards
  MergeOperator* merge = nullptr;
  /// The options the cell was built with; ResizeShard reuses the key
  /// attributes and merge order and bumps the generation.
  ShardOptions options;
};

/// Rewrites `graph` to execute `op` as `options.shards` key-partitioned
/// replicas (see file comment). Must run on a quiescent graph before the
/// engine configures it. Fails without modifying the graph when:
///  * `op` does not support CloneFresh (Unimplemented),
///  * ordered merging is requested for a multi-input operator,
///  * the key_attrs count matches neither 1 nor the input-port count,
///  * `op` is not a connected non-source, non-sink, non-queue node.
Result<ShardHandle> ShardOperator(QueryGraph* graph, Operator* op,
                                  const ShardOptions& options);

/// Rebuilds the per-replica committed snapshots of a sharded operator for
/// a different replica count (restore-time re-sharding). `prototype` is
/// the original operator (ShardHandle::original); dispatches to its
/// type's repartitioning logic. Unimplemented for types without one.
Result<std::vector<OperatorSnapshot>> RepartitionShardSnapshots(
    const Operator& prototype, const std::vector<OperatorSnapshot>& snapshots,
    size_t new_n);

/// Live shard-count change (the SLO controller's rung-3 actuation).
/// Rebuilds the shard cell of `handle` with `new_shards` replicas,
/// carrying operator state across: the current replicas' states are
/// snapshotted, repartitioned via RepartitionShardSnapshots, and restored
/// into the fresh replicas. Stateless replicas (no StatefulOperator
/// interface) rebuild without state carry.
///
/// Contract: the graph must be quiescent and *deconfigured* — sources
/// paused, the engine's decoupling queues drained and removed
/// (StreamEngine::Deconfigure), so every produced element has flowed
/// through the merge. The old generation's split/replica/merge nodes stay
/// graph-owned but fully detached (their shard tags are cleared); the
/// returned handle describes the new generation. Refusals name the
/// blocking condition and leave the graph untouched, except that the old
/// merge's pending lanes are flushed downstream first (that flush is
/// required for any resize and is harmless on its own).
Result<ShardHandle> ResizeShard(QueryGraph* graph, const ShardHandle& handle,
                                size_t new_shards);

}  // namespace flexstream

#endif  // FLEXSTREAM_API_SHARD_H_

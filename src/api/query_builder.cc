#include "api/query_builder.h"

#include "util/logging.h"

namespace flexstream {

QueryBuilder::QueryBuilder(QueryGraph* graph) : graph_(graph) {
  CHECK(graph != nullptr);
}

void QueryBuilder::MustConnect(Node* from, Operator* to, int port) {
  CHECK_OK(graph_->Connect(from, to, port));
}

Source* QueryBuilder::AddSource(std::string name) {
  return graph_->Add<Source>(std::move(name));
}

Selection* QueryBuilder::Select(Node* input, std::string name,
                                Selection::Predicate predicate,
                                double simulated_cost_micros) {
  Selection* op = graph_->Add<Selection>(std::move(name),
                                         std::move(predicate),
                                         simulated_cost_micros);
  MustConnect(input, op, 0);
  return op;
}

Selection* QueryBuilder::Select(Node* input, std::string name,
                                Int64ColumnPredicate pred,
                                double simulated_cost_micros) {
  Selection* op = graph_->Add<Selection>(std::move(name), std::move(pred),
                                         simulated_cost_micros);
  MustConnect(input, op, 0);
  return op;
}

Projection* QueryBuilder::Project(Node* input, std::string name,
                                  std::vector<size_t> attrs,
                                  double simulated_cost_micros) {
  Projection* op = graph_->Add<Projection>(std::move(name), std::move(attrs),
                                           simulated_cost_micros);
  MustConnect(input, op, 0);
  return op;
}

MapOp* QueryBuilder::Map(Node* input, std::string name, MapOp::MapFn fn,
                         double simulated_cost_micros) {
  MapOp* op = graph_->Add<MapOp>(std::move(name), std::move(fn),
                                 simulated_cost_micros);
  MustConnect(input, op, 0);
  return op;
}

MapOp* QueryBuilder::Map(Node* input, std::string name, Int64ColumnMap map,
                         double simulated_cost_micros) {
  MapOp* op = graph_->Add<MapOp>(std::move(name), std::move(map),
                                 simulated_cost_micros);
  MustConnect(input, op, 0);
  return op;
}

UnionOp* QueryBuilder::Union(std::vector<Node*> inputs, std::string name) {
  UnionOp* op = graph_->Add<UnionOp>(std::move(name));
  for (Node* input : inputs) MustConnect(input, op, 0);
  return op;
}

WindowedAggregate* QueryBuilder::Aggregate(
    Node* input, std::string name, WindowedAggregate::Options options) {
  WindowedAggregate* op =
      graph_->Add<WindowedAggregate>(std::move(name), options);
  MustConnect(input, op, 0);
  return op;
}

SymmetricHashJoin* QueryBuilder::HashJoin(Node* left, Node* right,
                                          std::string name,
                                          AppTime window_micros,
                                          size_t left_key_attr,
                                          size_t right_key_attr) {
  SymmetricHashJoin* op = graph_->Add<SymmetricHashJoin>(
      std::move(name), window_micros, left_key_attr, right_key_attr);
  MustConnect(left, op, SymmetricHashJoin::kLeftPort);
  MustConnect(right, op, SymmetricHashJoin::kRightPort);
  return op;
}

SymmetricNlJoin* QueryBuilder::NlJoin(Node* left, Node* right,
                                      std::string name, AppTime window_micros,
                                      SymmetricNlJoin::Predicate predicate) {
  SymmetricNlJoin* op = graph_->Add<SymmetricNlJoin>(
      std::move(name), window_micros, std::move(predicate));
  MustConnect(left, op, SymmetricNlJoin::kLeftPort);
  MustConnect(right, op, SymmetricNlJoin::kRightPort);
  return op;
}

MultiwayJoin* QueryBuilder::MJoin(std::vector<Node*> inputs, std::string name,
                                  AppTime window_micros,
                                  std::vector<size_t> key_attrs) {
  CHECK_EQ(inputs.size(), key_attrs.size());
  MultiwayJoin* op = graph_->Add<MultiwayJoin>(std::move(name), window_micros,
                                               std::move(key_attrs));
  for (size_t i = 0; i < inputs.size(); ++i) {
    MustConnect(inputs[i], op, static_cast<int>(i));
  }
  return op;
}

TumblingAggregate* QueryBuilder::Tumbling(Node* input, std::string name,
                                          TumblingAggregate::Options options) {
  TumblingAggregate* op =
      graph_->Add<TumblingAggregate>(std::move(name), options);
  MustConnect(input, op, 0);
  return op;
}

CountWindowAggregate* QueryBuilder::CountWindow(
    Node* input, std::string name, CountWindowAggregate::Options options) {
  CountWindowAggregate* op =
      graph_->Add<CountWindowAggregate>(std::move(name), options);
  MustConnect(input, op, 0);
  return op;
}

Distinct* QueryBuilder::Dedup(Node* input, std::string name,
                              AppTime window_micros,
                              std::vector<size_t> key_attrs) {
  Distinct* op = graph_->Add<Distinct>(std::move(name), window_micros,
                                       std::move(key_attrs));
  MustConnect(input, op, 0);
  return op;
}

Router* QueryBuilder::Route(Node* input, std::string name,
                            Router::RouteFn route,
                            std::vector<Operator*> destinations) {
  Router* op = graph_->Add<Router>(std::move(name), std::move(route));
  MustConnect(input, op, 0);
  for (Operator* dest : destinations) {
    MustConnect(op, dest, 0);
  }
  return op;
}

LatencySink* QueryBuilder::Latency(Node* input, std::string name,
                                   size_t offset_attr, TimePoint epoch,
                                   std::optional<size_t> phase_attr) {
  LatencySink* sink = graph_->Add<LatencySink>(std::move(name), offset_attr,
                                               epoch, phase_attr);
  MustConnect(input, sink, 0);
  return sink;
}

CountingSink* QueryBuilder::CountSink(Node* input, std::string name) {
  CountingSink* sink = graph_->Add<CountingSink>(std::move(name));
  MustConnect(input, sink, 0);
  return sink;
}

CollectingSink* QueryBuilder::CollectSink(Node* input, std::string name) {
  CollectingSink* sink = graph_->Add<CollectingSink>(std::move(name));
  MustConnect(input, sink, 0);
  return sink;
}

CallbackSink* QueryBuilder::Callback(
    Node* input, std::string name, std::function<void(const Tuple&, int)> fn) {
  CallbackSink* sink =
      graph_->Add<CallbackSink>(std::move(name), std::move(fn));
  MustConnect(input, sink, 0);
  return sink;
}

}  // namespace flexstream

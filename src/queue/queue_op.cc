#include "queue/queue_op.h"

#include <algorithm>
#include <utility>

#include "tuple/batch_pool.h"
#include "util/logging.h"

namespace flexstream {
namespace {

/// Global arrival counter shared by all queues: gives FIFO scheduling a
/// total order over elements across queues (Section 6.6's FIFO strategy).
std::atomic<uint64_t> g_arrival_seq{0};

/// The draining context (partition) the current thread runs, if any. Set
/// by Partition::RunLoop; used for the kBlock self-deadlock bypass.
thread_local const void* tl_drain_context = nullptr;

/// Reusable drain staging: every locked drain path (and the SPSC batch
/// path) gathers its barrier-free run into a TupleBatch taken from here,
/// so repeated drains reuse the vector's capacity. The scratch is *stolen*
/// (moved out, restored after) rather than referenced in place, so a
/// re-entrant drain — a downstream operator draining another queue inside
/// Emit — cannot clobber an outer drain's batch.
thread_local TupleBatch tl_drain_scratch;

TupleBatch StealDrainScratch() {
  TupleBatch batch = std::move(tl_drain_scratch);
  batch.clear();
  return batch;
}

void RestoreDrainScratch(TupleBatch&& batch) {
  batch.clear();
  tl_drain_scratch = std::move(batch);
}

}  // namespace

uint64_t AllocateArrivalSeq(uint64_t n) {
  return g_arrival_seq.fetch_add(n, std::memory_order_relaxed);
}

const char* OverloadPolicyToString(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedNewest:
      return "shed-newest";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
  }
  return "unknown";
}

bool OverloadPolicyFromString(const std::string& name,
                              OverloadPolicy* policy) {
  for (OverloadPolicy candidate :
       {OverloadPolicy::kBlock, OverloadPolicy::kShedNewest,
        OverloadPolicy::kShedOldest}) {
    if (name == OverloadPolicyToString(candidate)) {
      *policy = candidate;
      return true;
    }
  }
  return false;
}

namespace {
thread_local QueueOp::SlotYielder* tl_slot_yielder = nullptr;
}  // namespace

void QueueOp::SetCurrentSlotYielder(SlotYielder* yielder) {
  tl_slot_yielder = yielder;
}

void QueueOp::SetCurrentDrainContext(const void* context) {
  tl_drain_context = context;
}

QueueOp::QueueOp(std::string name, size_t ring_capacity)
    : Operator(Kind::kQueue, std::move(name), kVariadicArity),
      ring_capacity_(ring_capacity) {}

void QueueOp::Receive(const Tuple& tuple, int port) {
  (void)port;
  if (tuple.is_eos()) {
    EnqueueEos(tuple);
    return;
  }
  Enqueue(Tuple(tuple), tuple.is_barrier());
}

void QueueOp::Receive(Tuple&& tuple, int port) {
  (void)port;
  if (tuple.is_eos()) {
    EnqueueEos(tuple);
    return;
  }
  const bool is_barrier = tuple.is_barrier();
  Enqueue(std::move(tuple), is_barrier);
}

void QueueOp::ReceiveBatch(TupleBatch&& batch, int port) {
  (void)port;
  if (batch.empty()) return;
  if (max_elements_ != 0) {
    // Bounded: every admit/shed/block decision (and its drop counters)
    // must see one element at a time — unbundle onto the per-tuple path.
    for (Tuple& tuple : batch) Enqueue(std::move(tuple));
    return;
  }
  EnqueueBatch(std::move(batch));
}

void QueueOp::ReceiveColumnar(ColumnarBatchPtr batch, int port) {
  (void)port;
  if (batch == nullptr || batch->empty()) {
    columnar::ReleaseBatch(std::move(batch));
    return;
  }
  if (max_elements_ != 0 || !batch_delivery()) {
    // Bounded: every admit/shed/block decision must see one element at a
    // time. Per-tuple delivery: a boxed batch would only be unboxed again
    // at the drain. Either way, materialize onto the row-wise path.
    ReceiveBatch(columnar::MaterializeAndRelease(std::move(batch)), port);
    return;
  }
  EnqueueColumnar(std::move(batch));
}

void QueueOp::EnqueueColumnar(ColumnarBatchPtr batch) {
  const size_t n = batch->size();
  const bool single = single_producer();
  if (StatsCollectionEnabled()) {
    stats().RecordArrivalBatch(Now(), static_cast<int64_t>(n));
  }
  // One boxed item carries the whole batch. It owns a contiguous run of n
  // arrival seqs — the head seq orders the box against neighboring
  // per-tuple items in the consumer's FIFO merge — and accounts for n rows
  // in queued_items_, so Size() and scheduling see the true backlog (the
  // drain paths subtract the full row count when they pop the box).
  if (single) {
    DCHECK(!InputClosed()) << DebugString() << " data after close";
    Item item;
    item.seq = g_arrival_seq.fetch_add(n, std::memory_order_relaxed);
    item.col = std::move(batch);
    PushItemSingleProducer(std::move(item));
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    DCHECK(!eos_enqueued_) << DebugString() << " data after close";
    // The seq range is drawn under the lock so the deque stays
    // sequence-ordered even when several producers race.
    Item item;
    item.seq = g_arrival_seq.fetch_add(n, std::memory_order_relaxed);
    item.col = std::move(batch);
    items_.push_back(std::move(item));
  }
  CountQueuedBatchAndMaybeNotify(n, single);
}

void QueueOp::EmitColumnarDrained(ColumnarBatchPtr col) {
  if (StatsCollectionEnabled()) {
    stats().RecordProcessedBatch(0.0, static_cast<int64_t>(col->size()));
  }
  EmitColumnar(std::move(col));
}

void QueueOp::EnqueueBatch(TupleBatch&& batch) {
  const size_t n = batch.size();
  const bool single = single_producer();
  if (StatsCollectionEnabled()) {
    stats().RecordArrivalBatch(Now(), static_cast<int64_t>(n));
  }
  if (single) {
    DCHECK(!InputClosed()) << DebugString() << " data after close";
    // One sequence-range allocation for the whole batch instead of one
    // atomic RMW per element. The range is claimed in push order, so both
    // the ring and any spillover stay individually sequence-ordered (as in
    // Enqueue), and the spilled suffix carries the larger numbers — exactly
    // what the consumer's seq-merge expects.
    const uint64_t base = g_arrival_seq.fetch_add(n, std::memory_order_relaxed);
    const size_t chunk = std::min(ring_->FreeForProducer(n), n);
    if (chunk > 0) {
      // Bulk push: n slot writes, ONE head publish (vs one per element).
      ring_->PushBulkUnchecked(chunk, [&](size_t i) {
        return Item{std::move(batch[i]), base + i};
      });
      ring_pushes_.store(ring_pushes_.load(std::memory_order_relaxed) + chunk,
                         std::memory_order_relaxed);
    }
    if (chunk < n) {
      // Ring full: spill the suffix under one lock acquisition.
      std::lock_guard<std::mutex> lock(mutex_);
      for (size_t i = chunk; i < n; ++i) {
        items_.push_back({std::move(batch[i]), base + i});
      }
      overflow_count_.fetch_add(n - chunk, std::memory_order_release);
      locked_pushes_.store(
          locked_pushes_.load(std::memory_order_relaxed) + (n - chunk),
          std::memory_order_relaxed);
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    DCHECK(!eos_enqueued_) << DebugString() << " data after close";
    // The range is drawn under the lock, so the deque stays
    // sequence-ordered even when several producers race (as in Enqueue).
    const uint64_t base = g_arrival_seq.fetch_add(n, std::memory_order_relaxed);
    for (size_t i = 0; i < n; ++i) {
      items_.push_back({std::move(batch[i]), base + i});
    }
  }
  CountQueuedBatchAndMaybeNotify(n, single);
}

void QueueOp::Enqueue(Tuple&& tuple, bool is_barrier) {
  const bool single = single_producer();
  // Barriers bypass the bound entirely: never blocked, never shed.
  const bool bounded = max_elements_ != 0 && !is_barrier;
  if (is_barrier) {
    last_barrier_epoch_.store(tuple.epoch(), std::memory_order_relaxed);
  }
  // kBlock waits *before* taking any lock; the wait ends on freed space,
  // cancel, run failure, or timeout (overrun) — never by dropping data.
  if (bounded && overload_policy() == OverloadPolicy::kBlock) WaitForSpace();
  if (single) {
    // Shed-newest is exact here: one producer, so the Size() snapshot
    // cannot race another admit decision. (Shed-oldest never runs in SPSC
    // mode — SetBound forces the MPSC path for it.)
    if (bounded && overload_policy() == OverloadPolicy::kShedNewest &&
        Size() >= max_elements_) {
      dropped_newest_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    DCHECK(!InputClosed()) << DebugString() << " data after close";
    if (StatsCollectionEnabled() && !is_barrier) {
      stats().RecordArrival(Now());
    }
    // Single producer: sequence assignment and push happen in program
    // order, so both the ring and the spillover deque are individually
    // sequence-ordered and the consumer's merge stays correct.
    PushItemSingleProducer(
        {std::move(tuple),
         g_arrival_seq.fetch_add(1, std::memory_order_relaxed)});
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    DCHECK(!eos_enqueued_) << DebugString() << " data after close";
    if (bounded && Size() >= max_elements_) {
      // Shed decisions are taken under the queue lock, so racing MPSC
      // producers cannot overshoot the budget between check and push.
      const OverloadPolicy policy = overload_policy();
      if (policy == OverloadPolicy::kShedNewest) {
        dropped_newest_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (policy == OverloadPolicy::kShedOldest &&
          !items_.empty() && items_.front().tuple.is_data()) {
        // Make room by dropping the head; net queue size is unchanged, so
        // the queued count is pre-decremented to balance the increment in
        // CountQueuedAndMaybeNotify below.
        items_.pop_front();
        dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
        queued_items_.fetch_sub(1, std::memory_order_acq_rel);
      }
      // kBlock reaches here only after a timed-out (overrun) or bypassed
      // wait: enqueue anyway — kBlock never drops.
    }
    if (StatsCollectionEnabled() && !is_barrier) {
      stats().RecordArrival(Now());
    }
    // The sequence number is drawn under the lock so the deque stays
    // sequence-ordered even when several producers race.
    items_.push_back({std::move(tuple),
                      g_arrival_seq.fetch_add(1, std::memory_order_relaxed)});
  }
  CountQueuedAndMaybeNotify(/*is_eos=*/false, single);
}

void QueueOp::SetBound(size_t max_elements, OverloadPolicy policy,
                       Duration block_timeout) {
  max_elements_ = max_elements;
  overload_policy_.store(policy, std::memory_order_release);
  block_timeout_ = block_timeout;
  if (max_elements != 0 && policy == OverloadPolicy::kShedOldest &&
      single_producer()) {
    // Only the consumer may pop the SPSC ring head, so shedding the
    // oldest element requires every item behind the mutex.
    SetSingleProducer(false);
  }
}

Status QueueOp::SetOverloadPolicyLive(OverloadPolicy policy) {
  if (max_elements_ == 0) {
    return Status::FailedPrecondition(
        "SetOverloadPolicyLive refused on '" + name() +
        "': queue is unbounded (no overload decisions to govern); "
        "configure a bound via SetBound/EngineOptions::queue_max_elements");
  }
  if (policy == OverloadPolicy::kShedOldest ||
      overload_policy() == OverloadPolicy::kShedOldest) {
    return Status::InvalidArgument(
        "SetOverloadPolicyLive refused on '" + name() +
        "': kShedOldest changes the enqueue path (forces MPSC), which is "
        "only safe while quiescent; use SetBound before the run");
  }
  overload_policy_.store(policy, std::memory_order_release);
  if (policy != OverloadPolicy::kBlock) {
    // Wake parked kBlock producers; their wait predicate re-checks the
    // policy and they enqueue the in-flight element (bounded overrun).
    { std::lock_guard<std::mutex> lock(space_mutex_); }
    space_cv_.notify_all();
  }
  return Status::Ok();
}

void QueueOp::WaitForSpace() {
  // A producer that *is* this queue's draining context must never park:
  // nobody else will ever free space (e.g. GTS, where the one worker
  // thread both fills and drains every queue). Overrun instead.
  if (owner_ != nullptr && owner_ == tl_drain_context) return;
  if (Size() < max_elements_) return;
  if (waits_cancelled_.load(std::memory_order_acquire)) return;
  RunStatus* rs = run_status();
  // Hand our level-3 execution slot (if any) to other partitions for the
  // duration of the park — the consumer that will free this space may be
  // waiting for exactly that slot.
  SlotYielder* const yielder = tl_slot_yielder;
  if (yielder != nullptr) yielder->ReleaseSlot();
  {
    std::unique_lock<std::mutex> lock(space_mutex_);
    space_waiters_.fetch_add(1, std::memory_order_seq_cst);
    block_waits_.fetch_add(1, std::memory_order_relaxed);
    const TimePoint deadline = Now() + block_timeout_;
    bool timed_out = false;
    while (Size() >= max_elements_ &&
           overload_policy() == OverloadPolicy::kBlock &&
           !waits_cancelled_.load(std::memory_order_acquire) &&
           !(rs != nullptr && rs->failed())) {
      const TimePoint now = Now();
      if (now >= deadline) {
        timed_out = true;
        break;
      }
      // Sliced waits bound the reaction time to cancel/failure signals (and
      // to the rare drain whose space_waiters_ read raced this park) even
      // when no space_cv_ notification arrives.
      const Duration slice =
          std::min<Duration>(deadline - now, std::chrono::milliseconds(50));
      space_cv_.wait_for(lock, slice);
    }
    if (timed_out) block_timeouts_.fetch_add(1, std::memory_order_relaxed);
    space_waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (yielder != nullptr) yielder->ReacquireSlot();
}

void QueueOp::NotifySpaceFreed() {
  if (max_elements_ == 0 || overload_policy() != OverloadPolicy::kBlock) {
    return;
  }
  if (space_waiters_.load(std::memory_order_seq_cst) == 0) return;
  // Empty critical section: a waiter is either already parked (the notify
  // reaches it) or still holds space_mutex_ pre-check (it will observe the
  // freed space in its predicate).
  { std::lock_guard<std::mutex> lock(space_mutex_); }
  space_cv_.notify_all();
}

void QueueOp::CancelProducerWaits() {
  waits_cancelled_.store(true, std::memory_order_release);
  { std::lock_guard<std::mutex> lock(space_mutex_); }
  space_cv_.notify_all();
}

void QueueOp::EnqueueEos(const Tuple& tuple) {
  bool push_outside_lock = false;
  Item eos_item;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    max_eos_timestamp_ = std::max(max_eos_timestamp_, tuple.timestamp());
    ++eos_received_;
    if (eos_received_ < fan_in() || eos_enqueued_) return;
    eos_enqueued_ = true;
    eos_queued_flag_.store(true, std::memory_order_release);
    input_closed_.store(true, std::memory_order_release);
    eos_item = {Tuple::EndOfStream(max_eos_timestamp_),
                g_arrival_seq.fetch_add(1, std::memory_order_relaxed)};
    if (single_producer()) {
      // The SPSC push may need to spill, which re-takes mutex_ — do it
      // after unlocking. Safe: the last producer just closed, so no other
      // enqueue can interleave.
      push_outside_lock = true;
    } else {
      items_.push_back(std::move(eos_item));
    }
  }
  if (push_outside_lock) PushItemSingleProducer(std::move(eos_item));
  CountQueuedAndMaybeNotify(/*is_eos=*/true, /*single=*/push_outside_lock);
}

void QueueOp::PushItemSingleProducer(Item&& item) {
  // FullApprox is producer-exact (only the consumer frees space), so a
  // not-full ring guarantees the push succeeds and the item is never lost.
  if (!ring_->FullApprox()) {
    ring_->PushUnchecked(std::move(item));
    // Single-writer counter (the one producer): load+store avoids the
    // read-modify-write lock prefix of fetch_add on the hot path.
    ring_pushes_.store(ring_pushes_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  items_.push_back(std::move(item));
  overflow_count_.fetch_add(1, std::memory_order_release);
  locked_pushes_.store(locked_pushes_.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
}

void QueueOp::CountQueuedAndMaybeNotify(bool is_eos, bool single) {
  const size_t count =
      queued_items_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (!is_eos) {
    // `count` equals the data size here: data never follows the EOS item.
    if (single) {
      // The producer is the only peak writer in SPSC mode: a plain
      // read-compare-store replaces the CAS loop.
      if (count > peak_size_.load(std::memory_order_relaxed)) {
        peak_size_.store(count, std::memory_order_relaxed);
      }
    } else {
      size_t peak = peak_size_.load(std::memory_order_relaxed);
      while (peak < count && !peak_size_.compare_exchange_weak(
                                 peak, count, std::memory_order_relaxed)) {
      }
    }
  }
  // Coalesced wakeups: only the empty -> non-empty transition needs to wake
  // the consumer — everything enqueued while the queue is non-empty is
  // picked up by the drain loop the earlier notification started. EOS
  // always notifies so idle partitions learn about termination promptly.
  if (count == 1 || is_eos) NotifyListener();
}

void QueueOp::CountQueuedBatchAndMaybeNotify(size_t n, bool single) {
  const size_t count =
      queued_items_.fetch_add(n, std::memory_order_acq_rel) + n;
  if (single) {
    if (count > peak_size_.load(std::memory_order_relaxed)) {
      peak_size_.store(count, std::memory_order_relaxed);
    }
  } else {
    size_t peak = peak_size_.load(std::memory_order_relaxed);
    while (peak < count && !peak_size_.compare_exchange_weak(
                               peak, count, std::memory_order_relaxed)) {
    }
  }
  // Same coalescing as CountQueuedAndMaybeNotify: only the empty ->
  // non-empty transition (the add started from 0) wakes the consumer.
  if (count == n) NotifyListener();
}

void QueueOp::NotifyListener() {
  std::shared_ptr<const std::function<void()>> listener;
  std::shared_ptr<const std::function<bool()>> suppressor;
  {
    std::lock_guard<std::mutex> lock(listener_mutex_);
    listener = listener_;
    suppressor = wakeup_suppressor_;
  }
  // Chaos hook: a suppressor returning true swallows this wakeup (lost
  // notification). Recovery relies on the consumer's idle-poll failsafe.
  if (suppressor != nullptr && (*suppressor)()) return;
  if (listener != nullptr) {
    notifications_.fetch_add(1, std::memory_order_relaxed);
    (*listener)();
  }
}

size_t QueueOp::DrainBatch(size_t max_elements) {
  if (single_producer()) return DrainBatchSingleProducer(max_elements);

  // MPSC: one lock acquisition per barrier-free run. The run is drained
  // directly into a TupleBatch (stolen from a thread-local so repeated
  // drains reuse its capacity) and emitted outside the lock — per-tuple or
  // as one downstream ReceiveBatch, per batch_delivery(). Punctuations end
  // the run: the accumulated batch is flushed first, then the punctuation
  // travels the per-tuple path, so a batch never straddles a barrier or
  // EOS. Barriers are rare (one per checkpoint epoch), so the extra lock
  // acquisition per barrier is noise.
  size_t total_taken = 0;
  for (;;) {
    TupleBatch batch = StealDrainScratch();
    bool eos_taken = false;
    AppTime eos_ts = 0;
    bool barrier_taken = false;
    Tuple barrier;
    ColumnarBatchPtr col_taken;
    size_t taken = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (total_taken + taken < max_elements && !items_.empty()) {
        Item& front = items_.front();
        if (front.col != nullptr) [[unlikely]] {
          // Boxed columnar batch: it cannot join the row batch, so it ends
          // the run like a punctuation does — except it is data, emitted
          // (outside the lock) right after the accumulated prefix.
          col_taken = std::move(front.col);
          items_.pop_front();
          taken += col_taken->size();
          break;
        }
        if (front.tuple.is_eos()) {
          eos_taken = true;
          eos_ts = front.tuple.timestamp();
          items_.pop_front();
          break;
        }
        if (front.tuple.is_barrier()) [[unlikely]] {
          barrier_taken = true;
          barrier = std::move(front.tuple);
          items_.pop_front();
          ++taken;
          break;
        }
        batch.PushBack(std::move(front.tuple));
        items_.pop_front();
        ++taken;
      }
    }
    FinishDequeue(taken, eos_taken);
    total_taken += taken;
    if (test_fault() == TestFault::kReorderDrainBatch) [[unlikely]] {
      std::reverse(batch.begin(), batch.end());
    }
    EmitDrainedBatch(&batch);
    RestoreDrainScratch(std::move(batch));
    if (col_taken != nullptr) {
      EmitColumnarDrained(std::move(col_taken));
      if (total_taken < max_elements) continue;
    }
    if (barrier_taken) {
      EmitBarrier(barrier);
      if (total_taken < max_elements) continue;
    }
    if (eos_taken) EmitEos(eos_ts);
    return total_taken;
  }
}

void QueueOp::EmitDrainedBatch(TupleBatch* batch) {
  if (batch->empty()) return;
  if (batch_delivery()) {
    if (StatsCollectionEnabled()) {
      stats().RecordProcessedBatch(0.0, static_cast<int64_t>(batch->size()));
    }
    EmitBatch(std::move(*batch));
    batch->clear();  // normalize the moved-from state
    return;
  }
  for (Tuple& tuple : *batch) {
    if (StatsCollectionEnabled()) stats().RecordProcessed(0.0);
    EmitMove(std::move(tuple));
  }
  batch->clear();
}

size_t QueueOp::DrainBatchSingleProducer(size_t max_elements) {
  size_t taken = 0;
  bool eos_taken = false;
  AppTime eos_ts = 0;
  // Hot-path specialization: a decoupling queue almost always has exactly
  // one subscriber, so hoist the fan-out dispatch (and the stats check)
  // out of the per-element loop. Sampling the stats toggle once per batch
  // is fine — it is a test/bench switch, not runtime state.
  Operator* direct = nullptr;
  int direct_port = 0;
  if (outputs().size() == 1 && !StatsCollectionEnabled()) {
    direct = outputs()[0].target;
    direct_port = outputs()[0].port;
  }
  while (taken < max_elements && !eos_taken) {
    // Order matters: observe the available ring contents (an acquire load
    // of the producer's head index, possibly cached from an earlier one)
    // BEFORE checking the spillover count. Synchronizing with the head
    // store makes every spill that preceded the observed ring contents
    // visible; any spill we still cannot see was produced after all of
    // them and thus carries a larger sequence number, so draining the
    // observed run lock-free is order-safe when the spillover reads empty.
    const size_t avail = ring_->AvailableToConsumer();
    if (overflow_count_.load(std::memory_order_acquire) != 0) {
      taken += DrainMergeLocked(max_elements - taken, &eos_taken, &eos_ts);
      continue;
    }
    if (avail == 0) break;
    size_t run = std::min(avail, max_elements - taken);
    // Claim the whole run up front: the acq_rel RMW on queued_items_ is
    // what the coalesced-wakeup protocol orders against (see
    // CountQueuedAndMaybeNotify), and it must precede the empty check that
    // ends this drain. Size() undercounting the claimed-but-unemitted
    // items is fine — only this consumer thread acts on the difference.
    queued_items_.fetch_sub(run, std::memory_order_acq_rel);
    if (batch_delivery()) {
      // Batch delivery: move the claimed run out of the ring into a
      // TupleBatch and hand it downstream as one ReceiveBatch call.
      // Punctuations split the run — the accumulated prefix is flushed
      // before the punctuation travels the per-tuple path. The run's slots
      // are peeked in place and released with ONE tail publish at the end
      // (vs one per element); the producer cannot rewrite any of them
      // until that publish, and holding them marginally longer only delays
      // space reuse on an unbounded queue.
      TupleBatch batch = StealDrainScratch();
      batch.reserve(run);
      size_t consumed = 0;
      for (size_t i = 0; i < run; ++i) {
        Item* front = ring_->AtFromFront(i);
        if (front->col != nullptr) {
          // Boxed columnar batch: flush the accumulated row prefix, then
          // hand the box downstream whole. The box accounted for its row
          // count in queued_items_ but occupies one ring slot — the claim
          // above subtracted 1 for it, so settle the remainder here.
          ColumnarBatchPtr col = std::move(front->col);
          const size_t rows = col->size();
          queued_items_.fetch_sub(rows - 1, std::memory_order_acq_rel);
          EmitDrainedBatch(&batch);
          EmitColumnarDrained(std::move(col));
          ++consumed;
          taken += rows;
          continue;
        }
        if (front->tuple.is_eos()) {
          DCHECK(i + 1 == run);  // nothing is ever enqueued after EOS
          eos_taken = true;
          eos_ts = front->tuple.timestamp();
          eos_forwarded_.store(true, std::memory_order_release);
          ++consumed;
          break;
        }
        if (front->tuple.is_barrier()) [[unlikely]] {
          EmitDrainedBatch(&batch);
          EmitBarrier(front->tuple);
          ++consumed;
          ++taken;
          continue;
        }
        batch.PushBack(std::move(front->tuple));
        ++consumed;
        ++taken;
      }
      ring_->PopFrontBulk(consumed);
      EmitDrainedBatch(&batch);
      RestoreDrainScratch(std::move(batch));
      continue;
    }
    for (; run > 0; --run) {
      Item* front = ring_->FrontMutable();
      DCHECK(front != nullptr);  // single consumer: observed elements stay
      if (front->col != nullptr) [[unlikely]] {
        // A boxed batch left over from before a live batch-delivery
        // downgrade: deliver it whole (delivery granularity is free to
        // differ), settling the rows-vs-slot claim as above.
        ColumnarBatchPtr col = std::move(front->col);
        const size_t rows = col->size();
        queued_items_.fetch_sub(rows - 1, std::memory_order_acq_rel);
        ring_->PopFront();
        EmitColumnarDrained(std::move(col));
        taken += rows;
        continue;
      }
      if (front->tuple.is_eos()) {
        DCHECK(run == 1);  // nothing is ever enqueued after EOS
        eos_taken = true;
        eos_ts = front->tuple.timestamp();
        eos_forwarded_.store(true, std::memory_order_release);
        ring_->PopFront();
        break;
      }
      if (front->tuple.is_barrier()) [[unlikely]] {
        EmitBarrier(front->tuple);
        ring_->PopFront();
        ++taken;
        continue;
      }
      // No lock is held on this path, so emit straight out of the ring
      // slot — the producer cannot rewrite it until PopFront advances the
      // tail, and downstream adopts the payload in place. No scratch
      // staging, two moves per element fewer than the locked paths.
      if (direct != nullptr) {
        SetDeliverySender(this);
        direct->Receive(std::move(front->tuple), direct_port);
      } else {
        if (StatsCollectionEnabled()) stats().RecordProcessed(0.0);
        EmitMove(std::move(front->tuple));
      }
      ring_->PopFront();
      ++taken;
    }
  }
  // The lock-free ring path above frees space without going through
  // FinishDequeue, so wake blocked producers here.
  if (taken > 0 || eos_taken) NotifySpaceFreed();
  if (eos_taken) EmitEos(eos_ts);
  return taken;
}

size_t QueueOp::DrainMergeLocked(size_t max_elements, bool* eos_taken,
                                 AppTime* eos_ts) {
  // Spillover present: merge ring and deque by sequence number under the
  // lock until the spillover is drained, gathering directly into a
  // TupleBatch and emitting outside the lock (same stealing discipline as
  // the MPSC path). A punctuation ends the merge run — the caller's drain
  // loop re-enters while spillover remains.
  TupleBatch batch = StealDrainScratch();
  bool barrier_taken = false;
  Tuple barrier;
  ColumnarBatchPtr col_taken;
  size_t taken = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (taken < max_elements && !items_.empty()) {
      const Item* rf = ring_->Front();
      Item item;
      if (rf != nullptr && rf->seq < items_.front().seq) {
        const bool popped = ring_->PopInto(&item);
        DCHECK(popped);
      } else {
        item = std::move(items_.front());
        items_.pop_front();
        overflow_count_.fetch_sub(1, std::memory_order_release);
      }
      if (item.col != nullptr) [[unlikely]] {
        // Boxed columnar batch: ends the merge run like a punctuation
        // (it cannot join the row batch), emitted after the prefix below.
        col_taken = std::move(item.col);
        taken += col_taken->size();
        break;
      }
      if (item.tuple.is_eos()) {
        *eos_taken = true;
        *eos_ts = item.tuple.timestamp();
        break;
      }
      if (item.tuple.is_barrier()) [[unlikely]] {
        barrier_taken = true;
        barrier = std::move(item.tuple);
        ++taken;
        break;
      }
      batch.PushBack(std::move(item.tuple));
      ++taken;
    }
  }
  FinishDequeue(taken, *eos_taken);

  if (test_fault() == TestFault::kReorderDrainBatch) [[unlikely]] {
    std::reverse(batch.begin(), batch.end());
  }
  EmitDrainedBatch(&batch);
  RestoreDrainScratch(std::move(batch));
  if (col_taken != nullptr) EmitColumnarDrained(std::move(col_taken));
  if (barrier_taken) EmitBarrier(barrier);
  return taken;
}

void QueueOp::FinishDequeue(size_t taken, bool eos_taken) {
  const size_t dequeued = taken + (eos_taken ? 1 : 0);
  if (dequeued > 0) {
    queued_items_.fetch_sub(dequeued, std::memory_order_acq_rel);
    NotifySpaceFreed();
  }
  if (eos_taken) eos_forwarded_.store(true, std::memory_order_release);
}

uint64_t QueueOp::HeadSeq() const {
  if (single_producer()) {
    uint64_t best = kNoSeq;
    if (const Item* front = ring_->Front()) best = front->seq;
    if (overflow_count_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!items_.empty()) best = std::min(best, items_.front().seq);
    }
    return best;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.empty() ? kNoSeq : items_.front().seq;
}

void QueueOp::SetEnqueueListener(std::function<void()> listener) {
  std::shared_ptr<const std::function<void()>> ptr;
  if (listener) {
    ptr = std::make_shared<const std::function<void()>>(std::move(listener));
  }
  std::lock_guard<std::mutex> lock(listener_mutex_);
  listener_ = std::move(ptr);
}

void QueueOp::SetWakeupSuppressor(std::function<bool()> suppressor) {
  std::shared_ptr<const std::function<bool()>> ptr;
  if (suppressor) {
    ptr = std::make_shared<const std::function<bool()>>(
        std::move(suppressor));
  }
  std::lock_guard<std::mutex> lock(listener_mutex_);
  wakeup_suppressor_ = std::move(ptr);
}

void QueueOp::SetSingleProducer(bool single_producer) {
  std::lock_guard<std::mutex> lock(mutex_);
  DCHECK(queued_items_.load(std::memory_order_relaxed) == 0)
      << DebugString() << " enqueue-path switch on a non-empty queue";
  if (single_producer && ring_ == nullptr) {
    ring_ = std::make_unique<SpscRing<Item>>(ring_capacity_);
  }
  single_producer_.store(single_producer, std::memory_order_release);
}

void QueueOp::Reset() {
  Operator::Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  items_.clear();
  if (ring_ != nullptr) {
    while (ring_->TryPop().has_value()) {
    }
  }
  queued_items_.store(0, std::memory_order_relaxed);
  eos_queued_flag_.store(false, std::memory_order_relaxed);
  overflow_count_.store(0, std::memory_order_relaxed);
  peak_size_.store(0, std::memory_order_relaxed);
  input_closed_.store(false, std::memory_order_relaxed);
  eos_forwarded_.store(false, std::memory_order_relaxed);
  ring_pushes_.store(0, std::memory_order_relaxed);
  locked_pushes_.store(0, std::memory_order_relaxed);
  notifications_.store(0, std::memory_order_relaxed);
  // Drop/wait counters are run state; the bound itself is configuration
  // and survives Reset.
  dropped_newest_.store(0, std::memory_order_relaxed);
  dropped_oldest_.store(0, std::memory_order_relaxed);
  block_waits_.store(0, std::memory_order_relaxed);
  block_timeouts_.store(0, std::memory_order_relaxed);
  last_barrier_epoch_.store(0, std::memory_order_relaxed);
  waits_cancelled_.store(false, std::memory_order_relaxed);
  eos_received_ = 0;
  eos_enqueued_ = false;
  max_eos_timestamp_ = 0;
}

void QueueOp::Process(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  LOG(FATAL) << "QueueOp::Process must never be called";
}

}  // namespace flexstream

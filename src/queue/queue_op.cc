#include "queue/queue_op.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace flexstream {
namespace {

/// Global arrival counter shared by all queues: gives FIFO scheduling a
/// total order over elements across queues (Section 6.6's FIFO strategy).
std::atomic<uint64_t> g_arrival_seq{0};

}  // namespace

QueueOp::QueueOp(std::string name)
    : Operator(Kind::kQueue, std::move(name), kVariadicArity) {}

void QueueOp::Receive(const Tuple& tuple, int port) {
  (void)port;
  bool notify = false;
  std::function<void()> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listener = listener_;
    if (tuple.is_eos()) {
      max_eos_timestamp_ = std::max(max_eos_timestamp_, tuple.timestamp());
      ++eos_received_;
      if (eos_received_ >= fan_in() && !eos_enqueued_) {
        input_closed_ = true;
        eos_enqueued_ = true;
        items_.push_back({Tuple::EndOfStream(max_eos_timestamp_),
                          g_arrival_seq.fetch_add(1,
                                                  std::memory_order_relaxed)});
        notify = true;
      }
    } else {
      DCHECK(!input_closed_) << DebugString() << " data after close";
      if (StatsCollectionEnabled()) stats().RecordArrival(Now());
      items_.push_back(
          {tuple, g_arrival_seq.fetch_add(1, std::memory_order_relaxed)});
      ++data_count_;
      peak_size_ = std::max(peak_size_, data_count_);
      notify = true;
    }
  }
  if (notify && listener) listener();
}

size_t QueueOp::DrainBatch(size_t max_elements) {
  size_t drained = 0;
  while (drained < max_elements) {
    Tuple tuple;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (items_.empty()) break;
      tuple = std::move(items_.front().tuple);
      items_.pop_front();
      if (tuple.is_data()) {
        --data_count_;
      } else {
        eos_forwarded_ = true;
      }
    }
    if (tuple.is_eos()) {
      EmitEos(tuple.timestamp());
      break;
    }
    ++drained;
    if (StatsCollectionEnabled()) stats().RecordProcessed(0.0);
    Emit(tuple);
  }
  return drained;
}

size_t QueueOp::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_count_;
}

size_t QueueOp::PeakSize() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_size_;
}

bool QueueOp::InputClosed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return input_closed_;
}

bool QueueOp::Exhausted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eos_forwarded_ && items_.empty();
}

uint64_t QueueOp::HeadSeq() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.empty() ? kNoSeq : items_.front().seq;
}

void QueueOp::SetEnqueueListener(std::function<void()> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listener_ = std::move(listener);
}

void QueueOp::Reset() {
  Operator::Reset();
  std::lock_guard<std::mutex> lock(mutex_);
  items_.clear();
  data_count_ = 0;
  peak_size_ = 0;
  eos_received_ = 0;
  input_closed_ = false;
  eos_enqueued_ = false;
  eos_forwarded_ = false;
  max_eos_timestamp_ = 0;
}

void QueueOp::Process(const Tuple& tuple, int port) {
  (void)tuple;
  (void)port;
  LOG(FATAL) << "QueueOp::Process must never be called";
}

}  // namespace flexstream

// The decoupling queue, modeled as an operator (Section 2.4: "we have
// modeled queues as separate operators. ... queues do not have an impact on
// the semantics, but are only introduced for performance reasons").
//
// A QueueOp is the only legal cross-thread boundary in a query graph:
//  * Receive() is thread-safe and may be called by any number of upstream
//    producers (it enqueues).
//  * DrainBatch() is called by exactly one consumer — the thread of the
//    partition that owns the queue — and pushes dequeued elements into the
//    downstream subgraph with DI.
//
// End-of-stream: the queue counts EOS punctuations from its producers and
// appends a single EOS item once the last producer has closed, so the
// punctuation is totally ordered after all data. Draining that item
// forwards EOS downstream exactly once.

#ifndef FLEXSTREAM_QUEUE_QUEUE_OP_H_
#define FLEXSTREAM_QUEUE_QUEUE_OP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <string>

#include "operators/operator.h"

namespace flexstream {

class QueueOp : public Operator {
 public:
  /// Sequence number reported for an empty queue.
  static constexpr uint64_t kNoSeq = std::numeric_limits<uint64_t>::max();

  explicit QueueOp(std::string name);

  /// Thread-safe enqueue (data) / producer-close bookkeeping (EOS).
  void Receive(const Tuple& tuple, int port) override;

  /// Dequeues up to `max_elements` data elements (plus a trailing EOS if it
  /// becomes due) and pushes them downstream in the calling thread.
  /// Returns the number of data elements drained. Single-consumer.
  size_t DrainBatch(size_t max_elements);

  /// Current number of queued data elements.
  size_t Size() const;
  bool Empty() const { return Size() == 0; }

  /// Largest Size() ever observed (updated on enqueue).
  size_t PeakSize() const;

  /// True once all producers have delivered EOS (the EOS item may still be
  /// queued behind data).
  bool InputClosed() const;

  /// True once the EOS punctuation has been pushed downstream and the
  /// queue is empty — this queue will never produce work again.
  bool Exhausted() const;

  /// Global arrival sequence number of the head element, or kNoSeq when
  /// empty. FIFO scheduling picks the queue with the smallest head
  /// sequence, which totally orders elements across all queues by arrival.
  uint64_t HeadSeq() const;

  /// Installs a callback invoked (outside the queue lock) after every
  /// enqueue — partitions use it to wake their worker thread.
  void SetEnqueueListener(std::function<void()> listener);

  void Reset() override;

 protected:
  /// Never called: QueueOp overrides Receive entirely.
  void Process(const Tuple& tuple, int port) override;

 private:
  struct Item {
    Tuple tuple;
    uint64_t seq;
  };

  mutable std::mutex mutex_;
  std::deque<Item> items_;
  size_t data_count_ = 0;
  size_t peak_size_ = 0;
  size_t eos_received_ = 0;
  bool input_closed_ = false;
  bool eos_enqueued_ = false;
  bool eos_forwarded_ = false;
  AppTime max_eos_timestamp_ = 0;
  std::function<void()> listener_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_QUEUE_QUEUE_OP_H_

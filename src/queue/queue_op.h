// The decoupling queue, modeled as an operator (Section 2.4: "we have
// modeled queues as separate operators. ... queues do not have an impact on
// the semantics, but are only introduced for performance reasons").
//
// A QueueOp is the only legal cross-thread boundary in a query graph:
//  * Receive() is thread-safe and may be called by any number of upstream
//    producers (it enqueues).
//  * DrainBatch() is called by exactly one consumer — the thread of the
//    partition that owns the queue — and pushes dequeued elements into the
//    downstream subgraph with DI.
//
// Two enqueue paths (see DESIGN.md, "Queue fast path"):
//  * MPSC (default): a mutex-protected deque. Safe for any number of
//    producer threads.
//  * SPSC (opt-in via SetSingleProducer): a lock-free SpscRing carries the
//    common case; when the ring is full the producer spills to the
//    mutex-protected deque. The consumer merges ring and spillover by
//    global arrival sequence number, so FIFO order — including the
//    cross-queue total order FIFO scheduling relies on — is preserved.
//    Placement enables this automatically for queues fed by exactly one
//    producing execution context (one upstream partition or one source),
//    the common case after Algorithm 1 stall-avoiding placement.
//
// Wakeup coalescing: the enqueue listener fires only on the
// empty -> non-empty transition (plus on EOS enqueue), so a partition's
// condvar notify costs O(drain batches), not O(tuples). A consumer that
// observed the queue empty always gets a fresh notification for the next
// element; elements enqueued while the queue is non-empty are picked up by
// the consumer's ongoing drain loop.
//
// End-of-stream: the queue counts EOS punctuations from its producers and
// appends a single EOS item once the last producer has closed, so the
// punctuation is totally ordered after all data. Draining that item
// forwards EOS downstream exactly once.

#ifndef FLEXSTREAM_QUEUE_QUEUE_OP_H_
#define FLEXSTREAM_QUEUE_QUEUE_OP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "operators/operator.h"
#include "tuple/columnar_batch.h"
#include "util/clock.h"
#include "util/spsc_ring.h"
#include "util/status.h"

namespace flexstream {

/// What a producer hitting a full bounded queue does (ISSUE 3; the paper's
/// Section 6 overload experiments and Chain's memory-minimizing design
/// both presuppose queue memory can be bounded).
///  kBlock      backpressure: the producer waits (timed) until the
///              consumer's drain frees space. Nothing is ever dropped; a
///              wait that exceeds the configured timeout overruns the
///              bound instead of deadlocking and is counted.
///  kShedNewest load shedding: the incoming element is dropped.
///  kShedOldest load shedding: the oldest queued element is dropped to
///              make room for the incoming one. Requires the MPSC path
///              (only the consumer may touch the SPSC ring head), which
///              SetBound enforces.
/// EOS punctuations are never shed and never blocked — termination must
/// propagate even under overload.
enum class OverloadPolicy { kBlock, kShedNewest, kShedOldest };

const char* OverloadPolicyToString(OverloadPolicy policy);
bool OverloadPolicyFromString(const std::string& name, OverloadPolicy* policy);

/// Reserves a contiguous run of `n` global arrival sequence numbers and
/// returns the first. The counter is the same one queue enqueues draw from
/// for FIFO scheduling, so numbers allocated here are totally ordered with
/// queue arrivals. A sequencing Router (src/operators/router.h) stamps
/// split tuples from this counter; the ordered Merge restores that order.
uint64_t AllocateArrivalSeq(uint64_t n = 1);

// `final` lets call sites with a static QueueOp* — producers pushing into
// a known queue, the owning partition draining it — devirtualize Receive
// and inline the whole transfer path under LTO.
class QueueOp final : public Operator {
 public:
  /// Sequence number reported for an empty queue.
  static constexpr uint64_t kNoSeq = std::numeric_limits<uint64_t>::max();

  /// Ring slots allocated when the SPSC fast path is enabled.
  static constexpr size_t kDefaultRingCapacity = 1024;

  explicit QueueOp(std::string name)
      : QueueOp(std::move(name), kDefaultRingCapacity) {}
  QueueOp(std::string name, size_t ring_capacity);

  /// Thread-safe enqueue (data and epoch barriers) / producer-close
  /// bookkeeping (EOS). Barriers ride the FIFO like data — every engine-
  /// placed queue has exactly one producer edge, so no barrier merging is
  /// needed — but bypass the bound: they are never shed and never blocked
  /// (a barrier parked behind a full queue would stall checkpointing
  /// exactly when overload makes recovery most likely).
  void Receive(const Tuple& tuple, int port) override;

  /// Move-aware enqueue: adopts the tuple's payload without copying the
  /// values vector. Used by upstream EmitMove.
  void Receive(Tuple&& tuple, int port) override;

  /// Batch enqueue (DESIGN.md §11): adopts every element of `batch`.
  /// Unbounded queues take a bulk path — one stats update, one lock
  /// acquisition (MPSC) or a straight run of ring pushes (SPSC), and one
  /// queued-count/notify update for the whole batch. Bounded queues
  /// unbundle into per-element Enqueue calls so every admit/shed/block
  /// decision and its counters see elements one at a time, exactly as the
  /// per-tuple contract specifies.
  void ReceiveBatch(TupleBatch&& batch, int port) override;

  /// Columnar enqueue (DESIGN.md §17): an unbounded batch-delivery queue
  /// boxes the whole typed batch into ONE queue item — a unique_ptr move
  /// through the ring or deque instead of N row moves — owning a
  /// contiguous run of arrival seqs (the head seq orders the box in the
  /// FIFO merge; the queued count reflects every row). Bounded queues and
  /// per-tuple-delivery queues materialize to rows at the door so every
  /// admit/shed/block decision still sees elements one at a time.
  void ReceiveColumnar(ColumnarBatchPtr batch, int port) override;

  /// Queues are schema-transparent; this passthrough lets the engine's
  /// columnar schema walk (Configure) cross placed queues.
  SchemaPtr InferOutputSchema(
      const std::vector<SchemaPtr>& inputs) const override {
    return inputs.empty() ? nullptr : inputs[0];
  }

  /// Dequeues up to `max_elements` data elements (plus a trailing EOS if it
  /// becomes due) and pushes them downstream in the calling thread. On the
  /// locked paths (MPSC, SPSC spill merge) the lock is taken once per
  /// barrier-free run — elements are drained directly into a TupleBatch
  /// and emitted outside the lock; on the lock-free SPSC path elements are
  /// emitted straight from the ring when delivering per-tuple, or gathered
  /// into a TupleBatch when batch delivery is enabled. Punctuations always
  /// split the run: the accumulated batch is flushed first, then the
  /// barrier/EOS travels the per-tuple path.
  /// Returns the number of data elements drained. Single-consumer.
  size_t DrainBatch(size_t max_elements);

  /// Downstream delivery granularity. When enabled, each drained
  /// barrier-free run of data elements is pushed downstream as a single
  /// ReceiveBatch call instead of N per-element EmitMove calls; the
  /// engine enables it when EngineOptions::emit_batch_size > 1. Configure
  /// while quiescent. Survives Reset like the bound (it is configuration,
  /// not run state), so recovery keeps the delivery granularity.
  /// Thread-safe (atomic flag): the SLO controller toggles it live when it
  /// raises/lowers the emit batch size; per-tuple and batch delivery are
  /// semantically identical, so the consumer observing the change one
  /// drain late is harmless.
  void SetBatchDelivery(bool enabled) {
    batch_delivery_.store(enabled, std::memory_order_relaxed);
  }
  bool batch_delivery() const {
    return batch_delivery_.load(std::memory_order_relaxed);
  }

  /// Current number of queued data elements, derived from the total
  /// queued-item counter minus a still-queued EOS punctuation. Exact
  /// whenever the queue is quiescent; during the EOS handover itself it
  /// may transiently read one element low, which schedulers tolerate (a
  /// skipped pick is retried on the next scheduling round).
  size_t Size() const {
    const size_t queued = queued_items_.load(std::memory_order_acquire);
    const size_t eos_pending =
        (eos_queued_flag_.load(std::memory_order_acquire) &&
         !eos_forwarded_.load(std::memory_order_acquire))
            ? 1
            : 0;
    return queued > eos_pending ? queued - eos_pending : 0;
  }
  bool Empty() const { return Size() == 0; }

  /// Largest Size() ever observed (updated on enqueue).
  size_t PeakSize() const {
    return peak_size_.load(std::memory_order_relaxed);
  }

  /// True once all producers have delivered EOS (the EOS item may still be
  /// queued behind data).
  bool InputClosed() const {
    return input_closed_.load(std::memory_order_acquire);
  }

  /// True once the EOS punctuation has been pushed downstream and the
  /// queue is empty — this queue will never produce work again.
  bool Exhausted() const {
    return eos_forwarded_.load(std::memory_order_acquire) && Size() == 0;
  }

  /// Global arrival sequence number of the head element, or kNoSeq when
  /// empty. FIFO scheduling picks the queue with the smallest head
  /// sequence, which totally orders elements across all queues by arrival.
  /// In SPSC mode this must be called from the consumer thread (it peeks
  /// the ring), which is where every scheduling strategy runs.
  uint64_t HeadSeq() const;

  /// Installs a callback invoked (outside the queue lock) when the queue
  /// transitions from empty to non-empty and when EOS is enqueued —
  /// partitions use it to wake their worker thread. Coalesced: enqueues
  /// into a non-empty queue do not re-notify.
  void SetEnqueueListener(std::function<void()> listener);

  /// Chaos injection (testing/chaos.h): when set, each enqueue
  /// notification first consults the suppressor; returning true swallows
  /// that wakeup. The partition idle-poll failsafe (and the watchdog) must
  /// recover — which is exactly what chaos runs machine-check. Never set
  /// outside tests.
  void SetWakeupSuppressor(std::function<bool()> suppressor);

  // -- Bounded-queue overload handling ------------------------------------

  /// Imposes a hard element budget on the queue: once Size() reaches
  /// `max_elements`, data enqueues follow `policy` (see OverloadPolicy).
  /// `max_elements` of 0 removes the bound (the default). `block_timeout`
  /// caps one kBlock producer wait — on expiry the element is enqueued
  /// anyway (counted in block_timeouts()), so accidental partition cycles
  /// cannot deadlock. Call while the queue is quiescent, before the engine
  /// starts. kShedOldest forces the MPSC enqueue path.
  void SetBound(size_t max_elements, OverloadPolicy policy,
                Duration block_timeout = std::chrono::seconds(2));
  size_t max_elements() const { return max_elements_; }
  OverloadPolicy overload_policy() const {
    return overload_policy_.load(std::memory_order_acquire);
  }
  bool bounded() const { return max_elements_ != 0; }

  /// Live overload-policy flip on an already-bounded queue — the SLO
  /// controller's rung-4 actuation (flip to shedding last, flip back on
  /// de-escalation). Thread-safe against concurrent producers/consumer;
  /// only kBlock <-> kShedNewest are allowed live (kShedOldest changes the
  /// enqueue path, which must not happen under running producers).
  /// Producers parked in a kBlock wait when the policy leaves kBlock are
  /// woken and enqueue their element (a bounded overrun — in-flight
  /// elements are never retroactively shed); subsequent enqueues shed.
  /// Fails without effect on an unbounded queue or a kShedOldest target.
  Status SetOverloadPolicyLive(OverloadPolicy policy);

  /// Overload counters. dropped() is the total across both shed kinds;
  /// with kBlock it stays 0 (kBlock never drops — see block_timeouts()).
  int64_t dropped_newest() const {
    return dropped_newest_.load(std::memory_order_relaxed);
  }
  int64_t dropped_oldest() const {
    return dropped_oldest_.load(std::memory_order_relaxed);
  }
  int64_t dropped() const { return dropped_newest() + dropped_oldest(); }
  /// Times a kBlock producer parked waiting for space.
  int64_t block_waits() const {
    return block_waits_.load(std::memory_order_relaxed);
  }
  /// Times a kBlock wait expired and overran the bound instead.
  int64_t block_timeouts() const {
    return block_timeouts_.load(std::memory_order_relaxed);
  }

  /// Epoch of the last barrier enqueued (0 before the first). Lets stall
  /// diagnostics (DescribePartitions) tell a stalled recovery from a
  /// stalled drain.
  uint64_t last_barrier_epoch() const {
    return last_barrier_epoch_.load(std::memory_order_relaxed);
  }

  /// Unblocks every producer currently parked in a kBlock wait and makes
  /// future waits return immediately (elements are enqueued, not dropped).
  /// Used on failure/teardown paths so no thread stays wedged behind a
  /// partition that will never drain again. Reset() re-arms blocking.
  void CancelProducerWaits();

  /// Tags the queue with the execution context that drains it (the owning
  /// partition). A kBlock producer running in that same context skips the
  /// wait entirely — blocking on a queue only oneself can drain is a
  /// guaranteed deadlock (e.g. GTS, where one thread drains every queue).
  void SetOwnerToken(const void* owner) { owner_ = owner; }
  /// Declares the calling thread's current draining context (thread-local;
  /// set by Partition::RunLoop for the duration of the loop).
  static void SetCurrentDrainContext(const void* context);

  /// A producer that parks in a kBlock wait may be holding an execution
  /// slot of the level-3 ThreadScheduler; parking without giving it up
  /// starves the very consumer whose drain would free the space whenever
  /// slots are scarce (with max_running of 1 the wait can only ever end by
  /// overrun timeout). A thread that runs under a slot scheduler declares
  /// a yielder (thread-local; set by Partition::RunLoop): WaitForSpace
  /// releases the slot for the duration of the park and reacquires it
  /// before returning.
  class SlotYielder {
   public:
    virtual ~SlotYielder() = default;
    virtual void ReleaseSlot() = 0;
    virtual void ReacquireSlot() = 0;
  };
  static void SetCurrentSlotYielder(SlotYielder* yielder);

  /// Selects the enqueue path. `true` promises that at most one thread at
  /// a time calls Receive (one producing partition or source); the queue
  /// then routes data through the lock-free SPSC ring. `false` (default)
  /// uses the mutex-protected deque. Must be called while the queue is
  /// empty and no producer/consumer is active (e.g. right after placement,
  /// before the engine starts).
  void SetSingleProducer(bool single_producer);
  bool single_producer() const {
    return single_producer_.load(std::memory_order_acquire);
  }

  /// Deliberate fault injection for the differential correctness harness
  /// (src/testing/differential.h). kReorderDrainBatch emits each drained
  /// batch in *reverse* order on the locked drain paths (MPSC and SPSC
  /// spill merge), violating the FIFO contract; the harness's mutation
  /// test asserts its sequence oracle catches exactly this. The fault is
  /// a no-op on the lock-free SPSC ring path (which emits straight from
  /// ring slots), so callers force the MPSC path when injecting. Never
  /// set outside tests.
  enum class TestFault { kNone, kReorderDrainBatch };
  void SetTestFault(TestFault fault) {
    test_fault_.store(fault, std::memory_order_release);
  }
  TestFault test_fault() const {
    return test_fault_.load(std::memory_order_acquire);
  }

  /// Diagnostics: enqueues that took the lock-free ring / the mutex path
  /// (spillover or MPSC), and listener invocations. Used by tests and the
  /// throughput bench to verify which path ran.
  int64_t ring_pushes() const {
    return ring_pushes_.load(std::memory_order_relaxed);
  }
  int64_t locked_pushes() const {
    return locked_pushes_.load(std::memory_order_relaxed);
  }
  int64_t notifications() const {
    return notifications_.load(std::memory_order_relaxed);
  }

  void Reset() override;

 protected:
  /// Never called: QueueOp overrides Receive entirely.
  void Process(const Tuple& tuple, int port) override;

 private:
  struct Item {
    Tuple tuple;
    uint64_t seq = 0;
    /// Boxed columnar payload: when set, this item carries a whole typed
    /// batch (tuple is an ignored placeholder) and accounts for
    /// col->size() rows in queued_items_. seq is the first of the batch's
    /// contiguous arrival-seq run.
    ColumnarBatchPtr col;
  };

  void Enqueue(Tuple&& tuple, bool is_barrier = false);
  /// Bulk enqueue for an unbounded queue: one stats update, one lock (or a
  /// run of ring pushes), one queued-count bump for the whole batch.
  void EnqueueBatch(TupleBatch&& batch);
  /// Boxes a columnar batch into one queue item (unbounded + batch
  /// delivery only; see ReceiveColumnar).
  void EnqueueColumnar(ColumnarBatchPtr batch);
  /// Forwards a drained boxed batch downstream (stats + EmitColumnar).
  void EmitColumnarDrained(ColumnarBatchPtr col);
  void EnqueueEos(const Tuple& tuple);
  /// kBlock producer wait: parks until Size() < max_elements_, the
  /// timeout expires (overrun), waits are cancelled, or the run failed.
  void WaitForSpace();
  /// Wakes kBlock producers after a drain freed space (satellite: the
  /// consumer-side space_available notification). Cheap when nobody
  /// waits — one relaxed load.
  void NotifySpaceFreed();
  /// SPSC producer path: ring first, spill to the locked deque when full.
  void PushItemSingleProducer(Item&& item);
  /// Bumps the queued-item count, maintains the peak, and fires the
  /// listener on the empty -> non-empty transition (or unconditionally
  /// for EOS).
  void CountQueuedAndMaybeNotify(bool is_eos, bool single);
  /// Batch analogue: bumps the queued count by `n` at once and notifies on
  /// the empty -> non-empty transition (count == n after the add).
  void CountQueuedBatchAndMaybeNotify(size_t n, bool single);
  void NotifyListener();
  /// Emits a drained barrier-free run downstream: as one ReceiveBatch call
  /// when batch delivery is enabled, else per-tuple EmitMove. Leaves
  /// `batch` empty either way.
  void EmitDrainedBatch(TupleBatch* batch);
  /// SPSC consumer path: drains observed ring runs lock-free and emits
  /// straight from each pop (no lock is held, so no scratch staging);
  /// falls into DrainMergeLocked whenever spillover is present.
  size_t DrainBatchSingleProducer(size_t max_elements);
  /// Merges ring and spillover deque by sequence number under the lock,
  /// draining directly into a TupleBatch and emitting outside the lock.
  /// A punctuation ends the merge run (the caller's loop re-enters while
  /// spillover remains). Returns the number of data items taken (barriers
  /// included) and sets `eos_taken`/`eos_ts`.
  size_t DrainMergeLocked(size_t max_elements, bool* eos_taken,
                          AppTime* eos_ts);
  /// Post-dequeue bookkeeping shared by the locked paths: drops the
  /// dequeued items (incl. a taken EOS) from the queued count and marks
  /// EOS as forwarded.
  void FinishDequeue(size_t taken, bool eos_taken);

  const size_t ring_capacity_;

  // --- bound configuration (written while quiescent, read by producers;
  // the atomics additionally admit the controller's live flips) ----------
  size_t max_elements_ = 0;  // 0 = unbounded
  std::atomic<bool> batch_delivery_{false};  // ReceiveBatch vs per-tuple
  std::atomic<OverloadPolicy> overload_policy_{OverloadPolicy::kBlock};
  Duration block_timeout_ = std::chrono::seconds(2);
  const void* owner_ = nullptr;  // draining context, for self-block bypass

  // --- overload counters / producer-wait machinery -----------------------
  std::atomic<int64_t> dropped_newest_{0};
  std::atomic<int64_t> dropped_oldest_{0};
  std::atomic<int64_t> block_waits_{0};
  std::atomic<int64_t> block_timeouts_{0};
  std::atomic<uint64_t> last_barrier_epoch_{0};
  std::atomic<bool> waits_cancelled_{false};
  std::atomic<int> space_waiters_{0};
  std::mutex space_mutex_;
  std::condition_variable space_cv_;

  // --- shared, lock-free ------------------------------------------------
  std::atomic<bool> single_producer_{false};
  std::atomic<size_t> queued_items_{0};  // data + the queued EOS item
  std::atomic<bool> eos_queued_flag_{false};  // mirror of eos_enqueued_
  std::atomic<size_t> overflow_count_{0};  // items_ size in SPSC mode
  std::atomic<size_t> peak_size_{0};
  std::atomic<bool> input_closed_{false};
  std::atomic<bool> eos_forwarded_{false};
  std::atomic<int64_t> ring_pushes_{0};
  std::atomic<int64_t> locked_pushes_{0};
  std::atomic<int64_t> notifications_{0};
  std::atomic<TestFault> test_fault_{TestFault::kNone};

  // --- SPSC fast path ---------------------------------------------------
  std::unique_ptr<SpscRing<Item>> ring_;

  // --- mutex-protected slow path (MPSC deque / SPSC spillover + EOS
  // bookkeeping) ---------------------------------------------------------
  mutable std::mutex mutex_;
  std::deque<Item> items_;
  size_t eos_received_ = 0;
  bool eos_enqueued_ = false;
  AppTime max_eos_timestamp_ = 0;

  // The listener is stored behind its own mutex so enqueues never copy a
  // std::function under the main queue lock; the notify path (rare, thanks
  // to coalescing) copies a shared_ptr instead.
  mutable std::mutex listener_mutex_;
  std::shared_ptr<const std::function<void()>> listener_;
  std::shared_ptr<const std::function<bool()>> wakeup_suppressor_;
};

}  // namespace flexstream

#endif  // FLEXSTREAM_QUEUE_QUEUE_OP_H_

// Selection behavior of the level-2 scheduling strategies.

#include <gtest/gtest.h>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "sched/chain_strategy.h"
#include "sched/fifo_strategy.h"
#include "sched/round_robin_strategy.h"
#include "sched/segment_strategy.h"
#include "sched/strategy.h"

namespace flexstream {
namespace {

// Two parallel branches: src_i -> q_i -> sel_i -> sink_i.
struct TwoBranchRig {
  QueryGraph graph;
  Source* src[2];
  QueueOp* queue[2];
  Selection* sel[2];
  CollectingSink* sink[2];

  TwoBranchRig() {
    for (int i = 0; i < 2; ++i) {
      const std::string suffix = std::to_string(i);
      src[i] = graph.Add<Source>("src" + suffix);
      queue[i] = graph.Add<QueueOp>("q" + suffix);
      sel[i] = graph.Add<Selection>("sel" + suffix,
                                    [](const Tuple&) { return true; });
      sink[i] = graph.Add<CollectingSink>("sink" + suffix);
      EXPECT_TRUE(graph.Connect(src[i], queue[i]).ok());
      EXPECT_TRUE(graph.Connect(queue[i], sel[i]).ok());
      EXPECT_TRUE(graph.Connect(sel[i], sink[i]).ok());
    }
  }

  std::vector<QueueOp*> queues() { return {queue[0], queue[1]}; }
};

TEST(StrategyFactoryTest, MakesAllKinds) {
  EXPECT_STREQ(MakeStrategy(StrategyKind::kFifo)->name(), "fifo");
  EXPECT_STREQ(MakeStrategy(StrategyKind::kRoundRobin)->name(),
               "round-robin");
  EXPECT_STREQ(MakeStrategy(StrategyKind::kChain)->name(), "chain");
  EXPECT_STREQ(MakeStrategy(StrategyKind::kSegment)->name(), "segment");
}

TEST(StrategyFactoryTest, KindNames) {
  EXPECT_STREQ(StrategyKindToString(StrategyKind::kFifo), "fifo");
  EXPECT_STREQ(StrategyKindToString(StrategyKind::kChain), "chain");
}

TEST(FifoStrategyTest, PicksGloballyOldestHead) {
  TwoBranchRig rig;
  FifoStrategy fifo;
  EXPECT_EQ(fifo.Next(rig.queues()), nullptr);
  rig.src[1]->Push(Tuple::OfInt(1, 1));
  rig.src[0]->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(fifo.Next(rig.queues()), rig.queue[1]);
  rig.queue[1]->DrainBatch(1);
  EXPECT_EQ(fifo.Next(rig.queues()), rig.queue[0]);
}

TEST(FifoStrategyTest, PicksGloballyOldestHeadWithRingPath) {
  TwoBranchRig rig;
  rig.queue[0]->SetSingleProducer(true);
  rig.queue[1]->SetSingleProducer(true);
  FifoStrategy fifo;
  EXPECT_EQ(fifo.Next(rig.queues()), nullptr);
  rig.src[1]->Push(Tuple::OfInt(1, 1));
  rig.src[0]->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(fifo.Next(rig.queues()), rig.queue[1]);
  rig.queue[1]->DrainBatch(1);
  EXPECT_EQ(fifo.Next(rig.queues()), rig.queue[0]);
  // With interleaved arrivals the strategy must drain in global arrival
  // order: the sequence of queue picks mirrors the push sequence.
  for (int i = 0; i < 8; ++i) {
    rig.src[i % 2]->Push(Tuple::OfInt(100 + i, 100 + i));
  }
  std::vector<int> picks;
  while (QueueOp* next = fifo.Next(rig.queues())) {
    picks.push_back(next == rig.queue[0] ? 0 : 1);
    next->DrainBatch(1);
  }
  // queue[0] still holds the earlier element (seq before all 100+i), then
  // the alternating pushes starting at src[0].
  const std::vector<int> expected = {0, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_EQ(picks, expected) << "global HeadSeq order preserved on rings";
}

TEST(RoundRobinStrategyTest, CyclesThroughNonEmptyQueues) {
  TwoBranchRig rig;
  RoundRobinStrategy rr;
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[0]->Push(Tuple::OfInt(2, 2));
  rig.src[1]->Push(Tuple::OfInt(3, 3));
  QueueOp* first = rr.Next(rig.queues());
  QueueOp* second = rr.Next(rig.queues());
  EXPECT_NE(first, second) << "round-robin alternates while both non-empty";
}

TEST(RoundRobinStrategyTest, SkipsEmptyQueues) {
  TwoBranchRig rig;
  RoundRobinStrategy rr;
  rig.src[1]->Push(Tuple::OfInt(1, 1));
  EXPECT_EQ(rr.Next(rig.queues()), rig.queue[1]);
  EXPECT_EQ(rr.Next(rig.queues()), rig.queue[1]);
}

TEST(ChainStrategyTest, PrefersSteeperSegment) {
  TwoBranchRig rig;
  // Branch 0: cheap and highly selective (steep slope).
  rig.sel[0]->SetCostMicros(1.0);
  rig.sel[0]->SetSelectivity(0.0);
  // Branch 1: expensive pass-through (flat slope).
  rig.sel[1]->SetCostMicros(1000.0);
  rig.sel[1]->SetSelectivity(1.0);
  ChainStrategy chain;
  chain.Initialize(rig.queues());
  EXPECT_GT(chain.PriorityOf(rig.queue[0]),
            chain.PriorityOf(rig.queue[1]));
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[1]->Push(Tuple::OfInt(2, 1));
  EXPECT_EQ(chain.Next(rig.queues()), rig.queue[0]);
  rig.queue[0]->DrainBatch(10);
  EXPECT_EQ(chain.Next(rig.queues()), rig.queue[1])
      << "falls back to remaining work";
}

TEST(ChainStrategyTest, FifoTieBreak) {
  TwoBranchRig rig;
  for (int i = 0; i < 2; ++i) {
    rig.sel[i]->SetCostMicros(10.0);
    rig.sel[i]->SetSelectivity(0.5);
  }
  ChainStrategy chain;
  chain.Initialize(rig.queues());
  rig.src[1]->Push(Tuple::OfInt(1, 1));
  rig.src[0]->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(chain.Next(rig.queues()), rig.queue[1])
      << "equal priorities resolve by arrival order";
}

TEST(ChainStrategyTest, ReprofileAdaptsToChangedStats) {
  TwoBranchRig rig;
  rig.sel[0]->SetCostMicros(1.0);
  rig.sel[0]->SetSelectivity(1.0);
  rig.sel[1]->SetCostMicros(1.0);
  rig.sel[1]->SetSelectivity(1.0);
  ChainStrategy chain(/*reprofile_interval=*/2);
  chain.Initialize(rig.queues());
  // Make branch 1 clearly steeper, then trigger reprofiling via Next calls.
  rig.sel[1]->SetSelectivity(0.0);
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[1]->Push(Tuple::OfInt(2, 2));
  (void)chain.Next(rig.queues());
  (void)chain.Next(rig.queues());
  EXPECT_GT(chain.PriorityOf(rig.queue[1]), chain.PriorityOf(rig.queue[0]));
}

TEST(SegmentStrategyTest, PrefersHigherReleaseRate) {
  TwoBranchRig rig;
  rig.sel[0]->SetCostMicros(1.0);
  rig.sel[0]->SetSelectivity(0.0);  // release 1.0 per 1us
  rig.sel[1]->SetCostMicros(100.0);
  rig.sel[1]->SetSelectivity(0.9);  // release 0.1 per 100us
  SegmentStrategy segment;
  segment.Initialize(rig.queues());
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[1]->Push(Tuple::OfInt(2, 1));
  EXPECT_EQ(segment.Next(rig.queues()), rig.queue[0]);
}

TEST(StrategyContractTest, AllStrategiesReturnNullWhenIdle) {
  TwoBranchRig rig;
  for (auto kind : {StrategyKind::kFifo, StrategyKind::kRoundRobin,
                    StrategyKind::kChain, StrategyKind::kSegment}) {
    auto strategy = MakeStrategy(kind);
    strategy->Initialize(rig.queues());
    EXPECT_EQ(strategy->Next(rig.queues()), nullptr)
        << StrategyKindToString(kind);
  }
}

TEST(StrategyContractTest, AllStrategiesEventuallyDrainBoth) {
  for (auto kind : {StrategyKind::kFifo, StrategyKind::kRoundRobin,
                    StrategyKind::kChain, StrategyKind::kSegment}) {
    TwoBranchRig rig;
    for (int i = 0; i < 2; ++i) {
      rig.sel[i]->SetCostMicros(1.0);
      rig.sel[i]->SetSelectivity(0.5);
    }
    auto strategy = MakeStrategy(kind);
    strategy->Initialize(rig.queues());
    for (int i = 0; i < 10; ++i) {
      rig.src[0]->Push(Tuple::OfInt(i, i));
      rig.src[1]->Push(Tuple::OfInt(i, i));
    }
    while (QueueOp* q = strategy->Next(rig.queues())) {
      q->DrainBatch(3);
    }
    EXPECT_EQ(rig.sink[0]->size(), 10u) << StrategyKindToString(kind);
    EXPECT_EQ(rig.sink[1]->size(), 10u) << StrategyKindToString(kind);
  }
}

}  // namespace
}  // namespace flexstream

// Key-partitioned operator sharding (src/api/shard.h, DESIGN.md §13):
// the hardened Router hash, punctuation broadcast across Router fan-out,
// the ordered Merge release rule and its edge cases, the ShardOperator
// graph rewrite, sharded-vs-unsharded equivalence, and restore-time
// snapshot repartitioning when the replica count changes.
//
// Runs under the `check-shard` CMake target
// (ctest -R "Shard|OrderedMerge|RouterHash|RouterPunctuation").

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/shard.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/merge.h"
#include "operators/router.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/symmetric_nl_join.h"
#include "recovery/state_snapshot.h"
#include "stats/report.h"
#include "tuple/tuple.h"
#include "tuple/tuple_batch.h"
#include "util/random.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);
constexpr AppTime kHugeWindow = 1'000'000'000'000;

// ---------------------------------------------------------------------------
// Router hash hardening (satellite: splitmix64 finalizer over Value::Hash).

std::array<int, 4> BucketCounts(const std::vector<int64_t>& keys) {
  std::array<int, 4> buckets{};
  for (int64_t key : keys) {
    buckets[Router::HashValue(Value(key)) % buckets.size()]++;
  }
  return buckets;
}

void ExpectBalanced(const std::array<int, 4>& buckets, int total,
                    double min_share, double max_share) {
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double share = static_cast<double>(buckets[i]) / total;
    EXPECT_GE(share, min_share) << "bucket " << i << " starved";
    EXPECT_LE(share, max_share) << "bucket " << i << " overloaded";
  }
}

TEST(RouterHashTest, SequentialKeysBalance) {
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 10000; ++i) keys.push_back(i);
  // Raw integer hashes are frequently identity-like; sequential keys would
  // then stripe perfectly... into whatever pattern `% n` makes of them.
  // The splitmix64 finalizer must spread them uniformly regardless.
  ExpectBalanced(BucketCounts(keys), 10000, 0.15, 0.35);
}

TEST(RouterHashTest, StridedKeysBalance) {
  // Power-of-two strides are the classic degenerate case for weak hashes
  // combined with power-of-two bucket counts.
  std::vector<int64_t> keys;
  for (int64_t i = 0; i < 10000; ++i) keys.push_back(i * 1024);
  ExpectBalanced(BucketCounts(keys), 10000, 0.15, 0.35);
}

TEST(RouterHashTest, ZipfKeysBalance) {
  // Skewed key popularity: the heaviest key of Zipf(1000, 0.8) carries
  // ~5% of the mass, so 4 buckets can stay reasonably balanced as long as
  // distinct keys spread well.
  Rng rng(42);
  std::vector<int64_t> keys;
  for (int i = 0; i < 20000; ++i) keys.push_back(rng.Zipf(1000, 0.8));
  ExpectBalanced(BucketCounts(keys), 20000, 0.10, 0.45);
}

TEST(RouterHashTest, MixHashScramblesAndIsDeterministic) {
  EXPECT_NE(Router::MixHash(0), 0u);
  EXPECT_NE(Router::MixHash(1), Router::MixHash(2));
  EXPECT_EQ(Router::MixHash(7), Router::MixHash(7));
  // Neighboring inputs must disagree in roughly half their bits.
  const uint64_t diff = Router::MixHash(1000) ^ Router::MixHash(1001);
  EXPECT_GE(__builtin_popcountll(diff), 16);
}

// ---------------------------------------------------------------------------
// Punctuation broadcast across a Router fan-out (satellite: regression for
// routing EOS/barriers to a single subscriber). If punctuations followed
// the route function, one branch would never close (the run would hang)
// and barrier alignment downstream would stall every commit.

TEST(RouterPunctuationTest, BroadcastsEosAndBarriersAcrossFanOut) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  // Destinations are built unconnected; Route() wires them to the router.
  auto pass = [](const Tuple&) { return true; };
  Selection* even = graph.Add<Selection>("even", pass);
  Selection* odd = graph.Add<Selection>("odd", pass);
  qb.Route(src, "route", Router::HashAttr(0), {even, odd});
  CollectingSink* even_sink = qb.CollectSink(even, "even_sink");
  CollectingSink* odd_sink = qb.CollectSink(odd, "odd_sink");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 10;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 100; ++i) {
    src->Push(Tuple::OfInt(i, i + 1));
  }
  src->Close(101);
  // Hangs here (timeout) if EOS went to only one branch.
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  // Both branches closed and between them saw the full stream.
  const std::vector<Tuple> even_out = even_sink->TakeResults();
  const std::vector<Tuple> odd_out = odd_sink->TakeResults();
  EXPECT_EQ(even_out.size() + odd_out.size(), 100u);
  EXPECT_GT(even_out.size(), 0u);
  EXPECT_GT(odd_out.size(), 0u);
  // Barriers crossed the fan-out too: epochs committed on both branches.
  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_GT(engine.recovery()->coordinator().committed_epoch(), 0u);
}

// ---------------------------------------------------------------------------
// Ordered merge edge cases (satellite). A LaneFeeder drives one merge lane
// directly, standing in for a shard replica: it emits pre-stamped tuples.

class LaneFeeder : public Operator {
 public:
  explicit LaneFeeder(std::string name)
      : Operator(Kind::kOperator, std::move(name), /*input_arity=*/1) {}

  /// Emits one data element stamped with arrival sequence `seq`.
  void Feed(int64_t value, uint64_t seq) {
    Tuple tuple = Tuple::OfInt(value, static_cast<AppTime>(seq) + 1);
    tuple.set_seq(seq);
    EmitMove(std::move(tuple));
  }

  /// Emits a whole pre-stamped batch (batch-delivery path).
  void FeedBatch(std::vector<std::pair<int64_t, uint64_t>> elements) {
    TupleBatch batch;
    for (auto& [value, seq] : elements) {
      Tuple tuple = Tuple::OfInt(value, static_cast<AppTime>(seq) + 1);
      tuple.set_seq(seq);
      batch.PushBack(std::move(tuple));
    }
    EmitBatch(std::move(batch));
  }

  void CloseLane(AppTime timestamp = 0) { EmitEos(timestamp); }
  void Barrier(uint64_t epoch) { EmitBarrier(Tuple::EpochBarrier(epoch)); }

 protected:
  void Process(const Tuple&, int) override {}
};

struct MergeRig {
  QueryGraph graph;
  LaneFeeder* lane0 = nullptr;
  LaneFeeder* lane1 = nullptr;
  MergeOperator* merge = nullptr;
  CollectingSink* sink = nullptr;

  explicit MergeRig(MergeOperator::Order order = MergeOperator::Order::kSequence) {
    lane0 = graph.Add<LaneFeeder>("lane0");
    lane1 = graph.Add<LaneFeeder>("lane1");
    merge = graph.Add<MergeOperator>("merge", order);
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(lane0, merge, 0).ok());
    EXPECT_TRUE(graph.Connect(lane1, merge, 0).ok());
    EXPECT_TRUE(graph.Connect(merge, sink, 0).ok());
  }

  std::vector<int64_t> TakeValues() {
    std::vector<int64_t> values;
    for (const Tuple& t : sink->TakeResults()) values.push_back(t.IntAt(0));
    return values;
  }
};

TEST(OrderedMergeTest, RestoresGlobalSequenceAcrossLanes) {
  MergeRig rig;
  rig.lane0->Feed(0, 0);
  rig.lane0->Feed(2, 2);  // lane1 empty: both buffered
  EXPECT_EQ(rig.sink->size(), 0u);
  rig.lane1->Feed(1, 1);  // releases 0, 1; 2 waits on lane1 again
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{0, 1}));
  // Releases 2 only: lane0 is now open and empty, so 3 could still be
  // undercut by a future lane0 element as far as the merge knows.
  rig.lane1->Feed(3, 3);
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{2}));
  rig.lane0->CloseLane();  // lane0 stops gating: 3 flushes
  rig.lane1->Feed(4, 4);   // closed lane0 never blocks
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{3, 4}));
  rig.lane1->CloseLane();
  EXPECT_TRUE(rig.merge->closed());
  EXPECT_TRUE(rig.sink->closed());
}

TEST(OrderedMergeTest, EmptyReplicaReleasesOnlyAtEos) {
  // One replica never receives a single element (all keys hash away from
  // it): the merge must hold everything until that lane closes, then
  // release the full stream in order.
  MergeRig rig;
  for (uint64_t seq = 0; seq < 5; ++seq) {
    rig.lane0->Feed(static_cast<int64_t>(seq), seq);
  }
  EXPECT_EQ(rig.sink->size(), 0u);
  EXPECT_EQ(rig.merge->PendingCount(), 5u);
  rig.lane1->CloseLane();
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(rig.merge->PendingCount(), 0u);
  rig.lane0->CloseLane();
  EXPECT_TRUE(rig.sink->closed());
}

TEST(OrderedMergeTest, EarlyEosLaneStopsGatingReleases) {
  // A replica that closes early (EOS while the others stream on) must not
  // delay the surviving lanes by a single element.
  MergeRig rig;
  rig.lane1->Feed(0, 0);
  rig.lane1->CloseLane();
  // 0 is still gated: the open lane0 could yet deliver a smaller stamp.
  EXPECT_EQ(rig.sink->size(), 0u);
  rig.lane0->Feed(1, 1);  // releases 0 and 1 together
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{0, 1}));
  // From here the closed lane1 never delays the surviving lane again:
  // every element releases the moment it arrives.
  for (uint64_t seq = 2; seq <= 4; ++seq) {
    rig.lane0->Feed(static_cast<int64_t>(seq), seq);
    EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{
                                    static_cast<int64_t>(seq)}));
  }
  rig.lane0->CloseLane();
  EXPECT_TRUE(rig.sink->closed());
}

TEST(OrderedMergeTest, BarrierOnlyRunAlignsWithNothingPending) {
  MergeRig rig;
  rig.lane0->Barrier(1);
  EXPECT_EQ(rig.merge->aligned_epoch(), 0u);  // lane1 not aligned yet
  rig.lane1->Barrier(1);
  EXPECT_EQ(rig.merge->aligned_epoch(), 1u);
  EXPECT_EQ(rig.sink->size(), 0u);
  rig.lane0->CloseLane();
  rig.lane1->CloseLane();
  EXPECT_TRUE(rig.sink->closed());
  EXPECT_EQ(rig.sink->size(), 0u);
}

TEST(OrderedMergeTest, BarrierAlignmentFlushesPendingInOrder) {
  // At alignment every lane has delivered its full pre-barrier prefix, so
  // the merge may (and must) flush elements an open-but-empty lane was
  // blocking — ahead of the outgoing barrier.
  MergeRig rig;
  rig.lane0->Feed(0, 0);
  rig.lane1->Feed(1, 1);  // releases 0, 1
  rig.lane0->Feed(2, 2);
  rig.lane0->Feed(3, 3);  // blocked: lane1 open and empty
  EXPECT_EQ(rig.merge->PendingCount(), 2u);
  rig.lane0->Barrier(1);
  EXPECT_EQ(rig.merge->PendingCount(), 2u);  // not aligned yet
  rig.lane1->Barrier(1);
  EXPECT_EQ(rig.merge->PendingCount(), 0u);
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{0, 1, 2, 3}));
  rig.lane0->CloseLane();
  rig.lane1->CloseLane();
}

TEST(OrderedMergeTest, BatchAndPerTupleDeliverIdenticalSequences) {
  MergeRig per_tuple;
  per_tuple.lane0->Feed(0, 0);
  per_tuple.lane0->Feed(2, 2);
  per_tuple.lane0->Feed(5, 5);
  per_tuple.lane1->Feed(1, 1);
  per_tuple.lane1->Feed(3, 3);
  per_tuple.lane1->Feed(4, 4);
  per_tuple.lane0->CloseLane();
  per_tuple.lane1->CloseLane();

  MergeRig batched;
  batched.lane0->FeedBatch({{0, 0}, {2, 2}, {5, 5}});
  batched.lane1->FeedBatch({{1, 1}, {3, 3}, {4, 4}});
  batched.lane0->CloseLane();
  batched.lane1->CloseLane();

  const std::vector<int64_t> want{0, 1, 2, 3, 4, 5};
  EXPECT_EQ(per_tuple.TakeValues(), want);
  EXPECT_EQ(batched.TakeValues(), want);
}

TEST(OrderedMergeTest, ArrivalOrderMergeIsPassThrough) {
  MergeRig rig(MergeOperator::Order::kArrival);
  rig.lane0->Feed(7, 9);  // stamps are ignored entirely
  rig.lane1->Feed(8, 1);
  EXPECT_EQ(rig.TakeValues(), (std::vector<int64_t>{7, 8}));
  EXPECT_EQ(rig.merge->PendingCount(), 0u);
  rig.lane0->CloseLane();
  rig.lane1->CloseLane();
  EXPECT_TRUE(rig.sink->closed());
}

// ---------------------------------------------------------------------------
// ShardOperator: the graph rewrite and end-to-end equivalence.

TEST(ShardOperatorTest, RewritesTopologyAroundTheOriginal) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = kHugeWindow;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  CollectingSink* sink = qb.CollectSink(agg, "sink");

  ShardOptions options;
  options.shards = 3;
  Result<ShardHandle> sharded = ShardOperator(&graph, agg, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  const ShardHandle& handle = *sharded;
  ASSERT_EQ(handle.splits.size(), 1u);
  ASSERT_EQ(handle.replicas.size(), 3u);
  EXPECT_EQ(handle.original, agg);
  EXPECT_EQ(handle.merge->order(), MergeOperator::Order::kSequence);
  EXPECT_TRUE(handle.splits[0]->sequencing());

  // The prototype is fully detached; split/replicas/merge carry the flow.
  EXPECT_EQ(agg->fan_in(), 0u);
  EXPECT_EQ(agg->fan_out(), 0u);
  EXPECT_EQ(handle.splits[0]->fan_out(), 3u);
  for (Operator* replica : handle.replicas) {
    EXPECT_TRUE(replica->stamp_emit_seq());
    EXPECT_TRUE(replica->placement_solo());
    EXPECT_EQ(replica->shard_group(), "agg");
    EXPECT_EQ(replica->fan_in(), 1u);
    EXPECT_EQ(replica->fan_out(), 1u);
  }
  EXPECT_EQ(handle.merge->fan_in(), 3u);
  EXPECT_EQ(static_cast<Node*>(sink)->inputs()[0].source, handle.merge);
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(ShardOperatorTest, RejectsInvalidTargetsWithoutTouchingTheGraph) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Source* src2 = qb.AddSource("src2");
  SymmetricNlJoin* nl = qb.NlJoin(src, src2, "nl", kHugeWindow,
                                  [](const Tuple&, const Tuple&) {
                                    return true;
                                  });
  qb.CollectSink(nl, "sink");
  const size_t nodes_before = graph.nodes().size();

  // Sources cannot shard.
  EXPECT_EQ(ShardOperator(&graph, src, {}).status().code(),
            StatusCode::kInvalidArgument);
  // Ordered sharding of a multi-input operator is rejected (no per-lane
  // monotone stamp exists when ports drain in scheduler order).
  ShardOptions ordered;
  ordered.ordered = true;
  EXPECT_EQ(ShardOperator(&graph, nl, ordered).status().code(),
            StatusCode::kInvalidArgument);
  // SymmetricNlJoin has no CloneFresh: Unimplemented, graph unchanged.
  ShardOptions unordered;
  unordered.ordered = false;
  unordered.key_attrs = {0, 0};
  EXPECT_EQ(ShardOperator(&graph, nl, unordered).status().code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(graph.nodes().size(), nodes_before);
  EXPECT_EQ(nl->fan_in(), 2u);
  EXPECT_TRUE(graph.Validate().ok());
}

std::vector<Tuple> KeyedStream(int count) {
  std::vector<Tuple> stream;
  for (int i = 0; i < count; ++i) {
    stream.push_back(Tuple({Value(int64_t{i % 8}),
                            Value(static_cast<double>(i % 5))},
                           i + 1));
  }
  return stream;
}

TEST(ShardOperatorTest, OrderedShardedAggregateMatchesUnshardedExactly) {
  // Golden: single-threaded DI, unsharded.
  std::vector<Tuple> golden;
  {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* src = qb.AddSource("src");
    WindowedAggregate::Options agg_options;
    agg_options.kind = AggregateKind::kSum;
    agg_options.group_attr = 0;
    agg_options.value_attr = 1;
    agg_options.window_micros = kHugeWindow;
    WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
    CollectingSink* sink = qb.CollectSink(agg, "sink");
    for (const Tuple& t : KeyedStream(300)) src->Push(t);
    src->Close(1000);
    golden = sink->TakeResults();
  }
  ASSERT_EQ(golden.size(), 300u);

  // Candidate: 3 ordered shards under OTS (one thread per replica).
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = kHugeWindow;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  CollectingSink* sink = qb.CollectSink(agg, "sink");
  ShardOptions options;
  options.shards = 3;
  ASSERT_TRUE(ShardOperator(&graph, agg, options).ok());

  StreamEngine engine(&graph);
  EngineOptions engine_options;
  engine_options.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.Configure(engine_options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (const Tuple& t : KeyedStream(300)) src->Push(t);
  src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  // Exact sequence, not just multiset: the ordered merge restores the
  // split-point arrival order.
  EXPECT_EQ(sink->TakeResults(), golden);

  // Per-replica statistics surfaced (satellite: stats plumbing).
  Table shard_table = BuildShardTable(graph);
  EXPECT_EQ(shard_table.row_count(), 3u);
  const std::string summary = ShardImbalanceSummary(graph);
  EXPECT_NE(summary.find("shard group 'agg'"), std::string::npos);
  EXPECT_NE(summary.find("3 replicas"), std::string::npos);
  EXPECT_NE(summary.find("300 routed"), std::string::npos);
}

TEST(ShardOperatorTest, UnorderedShardedJoinMatchesUnshardedMultiset) {
  auto feed = [](Source* left, Source* right) {
    for (int i = 0; i < 200; ++i) {
      // Consecutive elements share a key and alternate sides, so both
      // join inputs see every key.
      Tuple t({Value(int64_t{(i / 2) % 6}), Value(int64_t{i})}, i + 1);
      if (i % 2 == 0) {
        left->Push(std::move(t));
      } else {
        right->Push(std::move(t));
      }
    }
    left->Close(1000);
    right->Close(1000);
  };

  std::vector<Tuple> golden;
  {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* left = qb.AddSource("left");
    Source* right = qb.AddSource("right");
    SymmetricHashJoin* join = qb.HashJoin(left, right, "join", kHugeWindow);
    CollectingSink* sink = qb.CollectSink(join, "sink");
    feed(left, right);
    golden = sink->TakeResults();
    std::sort(golden.begin(), golden.end());
  }
  ASSERT_GT(golden.size(), 0u);

  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("left");
  Source* right = qb.AddSource("right");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", kHugeWindow);
  CollectingSink* sink = qb.CollectSink(join, "sink");
  ShardOptions options;
  options.shards = 2;
  options.ordered = false;  // multi-input operators merge in arrival order
  Result<ShardHandle> sharded = ShardOperator(&graph, join, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().message();
  ASSERT_EQ(sharded->splits.size(), 2u);  // one split per input port

  StreamEngine engine(&graph);
  EngineOptions engine_options;
  engine_options.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.Configure(engine_options).ok());
  ASSERT_TRUE(engine.Start().ok());
  feed(left, right);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  std::vector<Tuple> got = sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);
}

// ---------------------------------------------------------------------------
// Restore-time snapshot repartitioning (N changes across a restore).

TEST(ShardSnapshotTest, RepartitionsAggregateStateAcrossNewShardCount) {
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = kHugeWindow;
  WindowedAggregate prototype("agg", agg_options);

  // Two live replicas, key-routed exactly like a Router would.
  std::array<std::unique_ptr<Operator>, 2> replicas = {
      prototype.CloneFresh("agg.shard0"), prototype.CloneFresh("agg.shard1")};
  std::vector<double> expected_sum(5, 0.0);
  for (int i = 0; i < 20; ++i) {
    const int64_t key = i % 5;
    const double value = static_cast<double>(i);
    expected_sum[key] += value;
    Tuple t({Value(key), Value(value)}, i + 1);
    replicas[Router::HashValue(Value(key)) % 2]->Receive(t, 0);
  }
  std::vector<OperatorSnapshot> snapshots;
  for (auto& replica : replicas) {
    snapshots.push_back(
        dynamic_cast<StatefulOperator*>(replica.get())->SnapshotState());
  }

  // Restore into THREE replicas.
  Result<std::vector<OperatorSnapshot>> repartitioned =
      RepartitionShardSnapshots(prototype, snapshots, 3);
  ASSERT_TRUE(repartitioned.ok()) << repartitioned.status().message();
  ASSERT_EQ(repartitioned->size(), 3u);
  int64_t elements = 0;
  for (const OperatorSnapshot& snap : *repartitioned) {
    elements += snap.element_count;
  }
  EXPECT_EQ(elements, 20);

  QueryGraph graph;
  std::array<WindowedAggregate*, 3> restored{};
  std::array<CollectingSink*, 3> sinks{};
  for (int i = 0; i < 3; ++i) {
    Operator* op = graph.Adopt(
        prototype.CloneFresh("new.shard" + std::to_string(i)));
    restored[i] = dynamic_cast<WindowedAggregate*>(op);
    ASSERT_NE(restored[i], nullptr);
    restored[i]->RestoreState((*repartitioned)[i]);
    sinks[i] = graph.Add<CollectingSink>("sink" + std::to_string(i));
    ASSERT_TRUE(graph.Connect(restored[i], sinks[i], 0).ok());
  }

  // Probe every group where a Router would now deliver it: the continued
  // sum must include the pre-repartition history.
  for (int64_t key = 0; key < 5; ++key) {
    const size_t shard = Router::HashValue(Value(key)) % 3;
    restored[shard]->Receive(Tuple({Value(key), Value(100.0)}, 1000), 0);
    const std::vector<Tuple> out = sinks[shard]->TakeResults();
    ASSERT_EQ(out.size(), 1u) << "key " << key;
    EXPECT_EQ(out[0].IntAt(0), key);
    EXPECT_DOUBLE_EQ(out[0].DoubleAt(1), expected_sum[key] + 100.0);
  }
}

TEST(ShardSnapshotTest, RepartitionsJoinStateAcrossNewShardCount) {
  SymmetricHashJoin prototype("join", kHugeWindow);
  std::array<std::unique_ptr<Operator>, 2> replicas = {
      prototype.CloneFresh("join.shard0"), prototype.CloneFresh("join.shard1")};
  // Store left-side history only, co-partitioned on the key.
  std::vector<std::vector<Tuple>> left_by_key(4);
  for (int i = 0; i < 16; ++i) {
    const int64_t key = i % 4;
    Tuple t({Value(key), Value(int64_t{i})}, i + 1);
    left_by_key[key].push_back(t);
    replicas[Router::HashValue(Value(key)) % 2]->Receive(
        t, SymmetricHashJoin::kLeftPort);
  }
  std::vector<OperatorSnapshot> snapshots;
  for (auto& replica : replicas) {
    snapshots.push_back(
        dynamic_cast<StatefulOperator*>(replica.get())->SnapshotState());
  }

  Result<std::vector<OperatorSnapshot>> repartitioned =
      RepartitionShardSnapshots(prototype, snapshots, 3);
  ASSERT_TRUE(repartitioned.ok()) << repartitioned.status().message();
  ASSERT_EQ(repartitioned->size(), 3u);
  int64_t elements = 0;
  for (const OperatorSnapshot& snap : *repartitioned) {
    elements += snap.element_count;
  }
  EXPECT_EQ(elements, 16);

  QueryGraph graph;
  std::array<SymmetricHashJoin*, 3> restored{};
  std::array<CollectingSink*, 3> sinks{};
  for (int i = 0; i < 3; ++i) {
    Operator* op = graph.Adopt(
        prototype.CloneFresh("new.shard" + std::to_string(i)));
    restored[i] = dynamic_cast<SymmetricHashJoin*>(op);
    ASSERT_NE(restored[i], nullptr);
    restored[i]->RestoreState((*repartitioned)[i]);
    sinks[i] = graph.Add<CollectingSink>("sink" + std::to_string(i));
    ASSERT_TRUE(graph.Connect(restored[i], sinks[i], 0).ok());
  }

  // Probing the right side at the new routing must find the full stored
  // left history for that key — every tuple landed where probes look.
  for (int64_t key = 0; key < 4; ++key) {
    const size_t shard = Router::HashValue(Value(key)) % 3;
    const Tuple probe({Value(key), Value(int64_t{999})}, 500);
    restored[shard]->Receive(probe, SymmetricHashJoin::kRightPort);
    std::vector<Tuple> got = sinks[shard]->TakeResults();
    std::vector<Tuple> want;
    for (const Tuple& left : left_by_key[key]) {
      want.push_back(Tuple::Concat(left, probe));
    }
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "key " << key;
  }
}

TEST(ShardSnapshotTest, NonGroupedAggregateCannotRepartition) {
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kCount;  // no group_attr
  WindowedAggregate prototype("agg", agg_options);
  std::vector<OperatorSnapshot> snapshots(2);
  EXPECT_EQ(RepartitionShardSnapshots(prototype, snapshots, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardSnapshotTest, UnsupportedOperatorIsUnimplemented) {
  Selection prototype("sel", [](const Tuple&) { return true; });
  std::vector<OperatorSnapshot> snapshots(2);
  EXPECT_EQ(RepartitionShardSnapshots(prototype, snapshots, 2).status().code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace flexstream

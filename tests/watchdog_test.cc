// The ThreadScheduler no-progress watchdog and the engine's wait-timeout
// diagnostics: a partition sitting on queued work without draining is
// reported with a full partition/queue-depth snapshot; partitions that are
// merely idle (done at EOS, or empty at open inputs) never are.

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "api/stream_engine.h"
#include "core/thread_scheduler.h"
#include "sched/partition.h"
#include "sched/strategy.h"
#include "test_util.h"
#include "util/clock.h"

namespace flexstream {
namespace {

using testutil::QueueRig;

ThreadScheduler::Options FastWatchdog() {
  ThreadScheduler::Options options;
  options.watchdog_interval = std::chrono::milliseconds(20);
  options.watchdog_stall_intervals = 2;
  return options;
}

// A partition with queued work and no worker thread is the purest stall:
// the watchdog must report it, naming the partition and its queue depths.
TEST(WatchdogTest, ReportsStalledPartition) {
  QueueRig rig;
  Partition partition("p0", {rig.queue}, MakeStrategy(StrategyKind::kFifo));
  for (int i = 0; i < 3; ++i) rig.src->Push(Tuple::OfInt(i, i));

  ThreadScheduler ts(FastWatchdog());
  ts.StartWatchdog({&partition});
  const TimePoint deadline = Now() + std::chrono::seconds(10);
  while (ts.stall_events() == 0 && Now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ts.StopWatchdog();

  ASSERT_GT(ts.stall_events(), 0);
  const std::string report = ts.LastStallReport();
  EXPECT_NE(report.find("p0"), std::string::npos) << report;
  EXPECT_NE(report.find("q=3"), std::string::npos) << report;
}

// Done at EOS: drained queues will never have work again — not a stall.
TEST(WatchdogTest, DoneAtEosNotReported) {
  QueueRig rig;
  Partition partition("p0", {rig.queue}, MakeStrategy(StrategyKind::kFifo));
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(1);
  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(16);
  ASSERT_TRUE(partition.Done());

  ThreadScheduler ts(FastWatchdog());
  ts.StartWatchdog({&partition});
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ts.StopWatchdog();
  EXPECT_EQ(ts.stall_events(), 0);
}

// Empty queues with open inputs: idling at a live stream is not a stall.
TEST(WatchdogTest, IdleAtOpenInputsNotReported) {
  QueueRig rig;
  Partition partition("p0", {rig.queue}, MakeStrategy(StrategyKind::kFifo));
  ASSERT_TRUE(partition.IdleAtOpenInputs());

  ThreadScheduler ts(FastWatchdog());
  ts.StartWatchdog({&partition});
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ts.StopWatchdog();
  EXPECT_EQ(ts.stall_events(), 0);
}

// Satellite: a timed-out engine wait returns false and the diagnostic
// snapshot names the partitions and their queue depths; the run then
// finishes normally once the sources close.
TEST(WatchdogTest, EngineWaitTimeoutProducesSnapshot) {
  testutil::LinearPipelineFixture fix;
  StreamEngine engine(&fix.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());

  fix.src->Push(Tuple::OfInt(5, 0));
  // The stream never closes, so the bounded wait must time out (the
  // workers keep running) and the snapshot must describe the partitions.
  EXPECT_FALSE(engine.WaitUntilFinishedFor(std::chrono::milliseconds(100)));
  const std::string snapshot = engine.DiagnosticSnapshot();
  EXPECT_NE(snapshot.find("partition '"), std::string::npos) << snapshot;

  fix.src->Close(1);
  EXPECT_TRUE(engine.WaitUntilFinishedFor(std::chrono::seconds(30)));
  EXPECT_TRUE(engine.RunResult().ok());
}

// A healthy engine-managed HMTS run under an armed watchdog stays clean.
TEST(WatchdogTest, EngineWatchdogCleanOnHealthyRun) {
  testutil::LinearPipelineFixture fix;
  StreamEngine engine(&fix.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.ts.watchdog_interval = std::chrono::milliseconds(200);
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  fix.Feed();
  EXPECT_TRUE(engine.WaitUntilFinishedFor(std::chrono::seconds(30)));
  EXPECT_TRUE(engine.RunResult().ok());
  EXPECT_EQ(engine.hmts()->thread_scheduler().stall_events(), 0);
  EXPECT_EQ(fix.sink->size(), fix.expected_results);
}

}  // namespace
}  // namespace flexstream

// SnapshotStore (src/recovery/snapshot_store.h): the crash-consistent
// write protocol, manifest handling, retention/GC, corruption fallback,
// and the chaos-tier disk faults (testing/chaos.h FaultyStorageEnv).
//
// Runs under the `check-durability` CMake target (ctest -R
// "SnapshotStore").

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "recovery/snapshot_store.h"
#include "recovery/storage_env.h"
#include "testing/chaos.h"

namespace flexstream {
namespace {

/// Fresh on-disk directory per test, removed on teardown.
class SnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<uint64_t> counter{0};
    dir_ = (std::filesystem::temp_directory_path() /
            ("flexstream_store_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
  }

  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  SnapshotStore::Options StoreOptions(int retain = 2,
                                      StorageEnv* env = nullptr) {
    SnapshotStore::Options options;
    options.dir = dir_;
    options.env = env;
    options.retain_epochs = retain;
    return options;
  }

  static EpochSnapshot MakeSnapshot(uint64_t epoch) {
    EpochSnapshot snap;
    snap.epoch = epoch;
    snap.operators.push_back(
        {"join", "payload-for-epoch-" + std::to_string(epoch)});
    snap.operators.push_back({"sink", std::string("\x00\x01\xff", 3)});
    DurableCursor cursor;
    cursor.name = "src";
    cursor.elements = epoch * 100;
    cursor.closed = epoch % 2 == 0;
    cursor.close_timestamp = static_cast<AppTime>(epoch) * 7;
    snap.cursors.push_back(cursor);
    return snap;
  }

  std::string EpochPath(uint64_t epoch) const {
    return (std::filesystem::path(dir_) / SnapshotStore::EpochFileName(epoch))
        .string();
  }

  std::string dir_;
};

TEST_F(SnapshotStoreTest, WriteAndLoadNewestRoundTrips) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());

  EXPECT_TRUE(store.LoadNewestIntact().status().code() ==
              StatusCode::kNotFound);

  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());

  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->epoch, 2u);
  ASSERT_EQ(loaded->operators.size(), 2u);
  EXPECT_EQ(loaded->operators[0].name, "join");
  EXPECT_EQ(loaded->operators[0].payload, "payload-for-epoch-2");
  EXPECT_EQ(loaded->operators[1].payload, std::string("\x00\x01\xff", 3));
  ASSERT_EQ(loaded->cursors.size(), 1u);
  EXPECT_EQ(loaded->cursors[0].elements, 200u);
  EXPECT_TRUE(loaded->cursors[0].closed);
  EXPECT_EQ(loaded->cursors[0].close_timestamp, 14);

  const SnapshotStoreStats stats = store.stats();
  EXPECT_EQ(stats.epochs_written, 2);
  EXPECT_EQ(stats.write_failures, 0);
  EXPECT_GT(stats.bytes_written, 0);
}

TEST_F(SnapshotStoreTest, RefusesNonMonotoneEpochs) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());
  EXPECT_EQ(store.WriteEpoch(MakeSnapshot(2)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store.WriteEpoch(MakeSnapshot(1)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.WriteEpoch(MakeSnapshot(3)).ok());
}

TEST_F(SnapshotStoreTest, RetentionGarbageCollectsOldEpochs) {
  SnapshotStore store(StoreOptions(/*retain=*/2));
  ASSERT_TRUE(store.Open().ok());
  for (uint64_t e = 1; e <= 4; ++e) {
    ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(e)).ok());
  }
  EXPECT_EQ(store.manifest_epochs(), (std::vector<uint64_t>{3, 4}));
  EXPECT_FALSE(std::filesystem::exists(EpochPath(1)));
  EXPECT_FALSE(std::filesystem::exists(EpochPath(2)));
  EXPECT_TRUE(std::filesystem::exists(EpochPath(3)));
  EXPECT_TRUE(std::filesystem::exists(EpochPath(4)));
  EXPECT_EQ(store.stats().gc_removed_files, 2);
}

TEST_F(SnapshotStoreTest, CorruptNewestFallsBackToPreviousIntact) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());

  // At-rest bit flip in the middle of the newest epoch file.
  {
    std::fstream f(EpochPath(2),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) / 2);
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size) / 2);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size) / 2);
    f.write(&byte, 1);
  }

  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_GE(store.stats().corrupt_epochs_skipped, 1);
}

TEST_F(SnapshotStoreTest, TornNewestFallsBackToPreviousIntact) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());

  // Torn write: only a prefix of the newest file survived the "crash".
  const auto size = std::filesystem::file_size(EpochPath(2));
  std::filesystem::resize_file(EpochPath(2), size / 2);

  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->epoch, 1u);
}

TEST_F(SnapshotStoreTest, AllEpochsCorruptIsNotFound) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  std::filesystem::resize_file(EpochPath(1), 4);
  EXPECT_EQ(store.LoadNewestIntact().status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotStoreTest, ReopenRecoversManifestAndStrays) {
  {
    SnapshotStore store(StoreOptions());
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
    ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());
  }
  // A crash between epoch-file rename and manifest write leaves a complete
  // epoch file the manifest does not know about. Simulate the worst case:
  // the manifest is gone entirely — the directory scan must recover both.
  std::filesystem::remove(std::filesystem::path(dir_) / "MANIFEST");
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  EXPECT_EQ(store.manifest_epochs(), (std::vector<uint64_t>{1, 2}));
  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 2u);
}

TEST_F(SnapshotStoreTest, IgnoresLeftoverTempFiles) {
  SnapshotStore store(StoreOptions());
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  // A crash mid-write leaves *.tmp debris; it must never shadow an epoch.
  std::ofstream(EpochPath(7) + ".tmp") << "partial garbage";
  SnapshotStore reopened(StoreOptions());
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.manifest_epochs(), (std::vector<uint64_t>{1}));
}

TEST_F(SnapshotStoreTest, TruncateAfterReopensEpochRange) {
  SnapshotStore store(StoreOptions(/*retain=*/3));
  ASSERT_TRUE(store.Open().ok());
  for (uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(e)).ok());
  }
  ASSERT_TRUE(store.TruncateAfter(1).ok());
  EXPECT_EQ(store.manifest_epochs(), (std::vector<uint64_t>{1}));
  // The dropped range is writable again — exactly what a resumed run does
  // after falling back past a corrupt newest epoch.
  EXPECT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());
  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 2u);
}

// -- Chaos-tier disk faults (FaultyStorageEnv) ----------------------------

TEST_F(SnapshotStoreTest, FaultyEnvTearsTargetEpochWrite) {
  ChaosOptions chaos;
  chaos.disk_torn_write_epoch = 2;
  FaultyStorageEnv env(LocalStorageEnv(), chaos);
  SnapshotStore store(StoreOptions(2, &env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  // The torn write lies about success: the store believes epoch 2 landed.
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());
  EXPECT_EQ(env.torn_writes(), 1);

  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_GE(store.stats().corrupt_epochs_skipped, 1);
}

TEST_F(SnapshotStoreTest, FaultyEnvCorruptsTargetEpochAtRest) {
  ChaosOptions chaos;
  chaos.disk_corrupt_epoch = 2;
  FaultyStorageEnv env(LocalStorageEnv(), chaos);
  SnapshotStore store(StoreOptions(2, &env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(2)).ok());
  EXPECT_EQ(env.corruptions(), 1);

  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 1u);
}

TEST_F(SnapshotStoreTest, FaultyEnvEnospcFailsWriteAndKeepsOldEpochs) {
  ChaosOptions chaos;
  chaos.disk_enospc_after_bytes = 1;  // every Append after byte 1 fails
  FaultyStorageEnv env(LocalStorageEnv(), chaos);
  SnapshotStore store(StoreOptions(2, &env));
  ASSERT_TRUE(store.Open().ok());
  // Open's manifest write may already burn the budget; every epoch write
  // must fail cleanly and leave nothing recorded.
  EXPECT_FALSE(store.WriteEpoch(MakeSnapshot(1)).ok());
  EXPECT_GT(env.enospc_failures(), 0);
  EXPECT_GE(store.stats().write_failures, 1);
  EXPECT_TRUE(store.manifest_epochs().empty());
  EXPECT_EQ(store.LoadNewestIntact().status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotStoreTest, FaultyEnvFsyncFailureAbandonsEpoch) {
  ChaosOptions chaos;
  chaos.disk_fsync_fail_epoch = 2;
  FaultyStorageEnv env(LocalStorageEnv(), chaos);
  SnapshotStore store(StoreOptions(2, &env));
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(1)).ok());
  EXPECT_FALSE(store.WriteEpoch(MakeSnapshot(2)).ok());
  EXPECT_EQ(env.fsync_failures(), 1);
  EXPECT_EQ(store.manifest_epochs(), (std::vector<uint64_t>{1}));
  // Epoch 2 was abandoned, not half-recorded: 1 is still loadable and 3
  // can still be written.
  ASSERT_TRUE(store.WriteEpoch(MakeSnapshot(3)).ok());
  Result<EpochSnapshot> loaded = store.LoadNewestIntact();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 3u);
}

}  // namespace
}  // namespace flexstream

// EWMA, OpStats, the capacity model and rate propagation.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/query_graph.h"
#include "graph/random_dag.h"
#include "operators/selection.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "stats/capacity.h"
#include "stats/ewma.h"
#include "stats/op_stats.h"

namespace flexstream {
namespace {

TEST(EwmaTest, FirstSampleSetsValue) {
  Ewma e(0.1);
  e.Add(10.0);
  EXPECT_EQ(e.value(), 10.0);
  EXPECT_EQ(e.count(), 1);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma e(0.2);
  e.Add(0.0);
  for (int i = 0; i < 100; ++i) e.Add(5.0);
  EXPECT_NEAR(e.value(), 5.0, 1e-6);
}

TEST(EwmaTest, RecencyWeighting) {
  Ewma slow(0.01);
  Ewma fast(0.9);
  slow.Add(0.0);
  fast.Add(0.0);
  slow.Add(100.0);
  fast.Add(100.0);
  EXPECT_LT(slow.value(), fast.value());
}

TEST(EwmaTest, MeanIsArithmetic) {
  Ewma e(0.5);
  e.Add(1.0);
  e.Add(3.0);
  EXPECT_EQ(e.mean(), 2.0);
}

TEST(EwmaTest, ResetClears) {
  Ewma e(0.5);
  e.Add(7.0);
  e.Reset();
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.value(), 0.0);
}

TEST(OpStatsTest, CostTracksProcessingSamples) {
  OpStats s;
  s.RecordProcessed(10.0);
  s.RecordProcessed(10.0);
  EXPECT_NEAR(s.CostMicros(), 10.0, 1e-9);
  EXPECT_EQ(s.processed(), 2);
  EXPECT_NEAR(s.BusyMicros(), 20.0, 1e-9);
}

TEST(OpStatsTest, InterarrivalInfiniteBeforeTwoArrivals) {
  OpStats s;
  EXPECT_TRUE(std::isinf(s.InterarrivalMicros()));
  const TimePoint t0 = Now();
  s.RecordArrival(t0);
  EXPECT_TRUE(std::isinf(s.InterarrivalMicros()));
  s.RecordArrival(t0 + FromMicros(100));
  EXPECT_NEAR(s.InterarrivalMicros(), 100.0, 1.0);
}

TEST(OpStatsTest, SelectivityRatio) {
  OpStats s;
  EXPECT_EQ(s.Selectivity(), 1.0) << "no data => neutral selectivity";
  for (int i = 0; i < 4; ++i) s.RecordProcessed(1.0);
  s.RecordEmitted(1);
  EXPECT_NEAR(s.Selectivity(), 0.25, 1e-9);
}

TEST(OpStatsTest, ResetClearsEverything) {
  OpStats s;
  s.RecordArrival(Now());
  s.RecordProcessed(5.0);
  s.RecordEmitted(2);
  s.Reset();
  EXPECT_EQ(s.processed(), 0);
  EXPECT_EQ(s.emitted(), 0);
  EXPECT_EQ(s.arrivals(), 0);
  EXPECT_EQ(s.CostMicros(), 0.0);
}

TEST(CapacityTest, SingleNode) {
  CapacityAccumulator acc;
  acc.AddNode(/*cost=*/30.0, /*d=*/100.0);
  EXPECT_EQ(acc.CombinedCost(), 30.0);
  EXPECT_NEAR(acc.CombinedInterarrival(), 100.0, 1e-9);
  EXPECT_NEAR(acc.Capacity(), 70.0, 1e-9);
}

TEST(CapacityTest, CombinationFormulas) {
  // c(P) = sum; d(P) = 1 / sum(1/d): two nodes at d=100 -> d(P)=50.
  CapacityAccumulator acc;
  acc.AddNode(10.0, 100.0);
  acc.AddNode(20.0, 100.0);
  EXPECT_EQ(acc.CombinedCost(), 30.0);
  EXPECT_NEAR(acc.CombinedInterarrival(), 50.0, 1e-9);
  EXPECT_NEAR(acc.Capacity(), 20.0, 1e-9);
}

TEST(CapacityTest, InfiniteInterarrivalIgnored) {
  CapacityAccumulator acc;
  acc.AddNode(5.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(acc.CombinedInterarrival()));
  EXPECT_TRUE(std::isinf(acc.Capacity()));
  acc.AddNode(5.0, 100.0);
  EXPECT_NEAR(acc.CombinedInterarrival(), 100.0, 1e-9);
  EXPECT_NEAR(acc.Capacity(), 90.0, 1e-9);
}

TEST(CapacityTest, MergeEqualsAddingAll) {
  CapacityAccumulator a;
  a.AddNode(1.0, 10.0);
  CapacityAccumulator b;
  b.AddNode(2.0, 20.0);
  a.Merge(b);
  CapacityAccumulator both;
  both.AddNode(1.0, 10.0);
  both.AddNode(2.0, 20.0);
  EXPECT_NEAR(a.Capacity(), both.Capacity(), 1e-12);
  EXPECT_EQ(a.size(), 2u);
}

TEST(CapacityTest, CapacityOfNodesReadsMetadata) {
  QueryGraph g;
  Selection* s1 = g.Add<Selection>("a", [](const Tuple&) { return true; });
  Selection* s2 = g.Add<Selection>("b", [](const Tuple&) { return true; });
  s1->SetCostMicros(10.0);
  s1->SetInterarrivalMicros(100.0);
  s2->SetCostMicros(20.0);
  s2->SetInterarrivalMicros(100.0);
  EXPECT_NEAR(CapacityOfNodes({s1, s2}), 20.0, 1e-9);
}

TEST(PropagateRatesTest, ChainWithSelectivity) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Selection* s1 = g.Add<Selection>("s1", [](const Tuple&) { return true; });
  Selection* s2 = g.Add<Selection>("s2", [](const Tuple&) { return true; });
  ASSERT_TRUE(g.Connect(src, s1).ok());
  ASSERT_TRUE(g.Connect(s1, s2).ok());
  src->SetInterarrivalMicros(100.0);  // 10k elements/sec
  src->SetSelectivity(1.0);
  s1->SetSelectivity(0.5);
  s2->SetSelectivity(1.0);
  ASSERT_TRUE(PropagateRates(&g).ok());
  EXPECT_NEAR(s1->InterarrivalMicros(), 100.0, 1e-9);
  EXPECT_NEAR(s2->InterarrivalMicros(), 200.0, 1e-9)
      << "selectivity 0.5 halves the downstream rate";
}

TEST(PropagateRatesTest, FanInSumsRates) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  a->SetInterarrivalMicros(100.0);
  b->SetInterarrivalMicros(50.0);
  a->SetSelectivity(1.0);
  b->SetSelectivity(1.0);
  u->SetSelectivity(1.0);
  ASSERT_TRUE(PropagateRates(&g).ok());
  // rates: 0.01 + 0.02 = 0.03 per us -> d = 33.3 us.
  EXPECT_NEAR(u->InterarrivalMicros(), 1.0 / 0.03, 1e-6);
}

TEST(PropagateRatesTest, FailsWithoutSourceMetadata) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Selection* s = g.Add<Selection>("s", [](const Tuple&) { return true; });
  ASSERT_TRUE(g.Connect(src, s).ok());
  EXPECT_EQ(PropagateRates(&g).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace flexstream

// Columnar execution path integration (DESIGN.md §17): source-side
// columnar accumulation and schema drift, the punctuation-split invariant,
// typed kernels vs the row-wise path across engine modes, arena lifetime
// through boxed queue transport (including spillover), schema propagation
// across engine-placed queues, pool recycling in steady state, and the
// fallback contract with the epoch/recovery machinery armed.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/map_op.h"
#include "operators/projection.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/tumbling_aggregate.h"
#include "queue/queue_op.h"
#include "tuple/batch_pool.h"
#include "tuple/columnar_batch.h"
#include "tuple/schema.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

/// Pass-through recording delivery granularity: one entry per columnar
/// batch (its size), plus row-wise batch and per-tuple delivery counts.
class ColumnarRecordingOp : public Operator {
 public:
  explicit ColumnarRecordingOp(std::string name)
      : Operator(Kind::kOperator, std::move(name), 1) {
    MarkColumnarNative();
  }

  std::vector<size_t> columnar_sizes;
  std::vector<size_t> row_batch_sizes;
  int64_t singles = 0;

 protected:
  void Process(const Tuple& tuple, int) override {
    ++singles;
    Emit(tuple);
  }
  void ProcessBatch(TupleBatch&& batch, int) override {
    row_batch_sizes.push_back(batch.size());
    EmitBatch(std::move(batch));
  }
  void ProcessColumnar(ColumnarBatchPtr batch, int) override {
    columnar_sizes.push_back(batch->size());
    EmitColumnar(std::move(batch));
  }
};

// -- Source-side columnar accumulation --------------------------------------

TEST(ColumnarSourceTest, AccumulatesTypedBatchesAndFlushesOnClose) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  ColumnarRecordingOp* rec = g.Add<ColumnarRecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  src->DeclareOutputSchema(MakeSchema({Value::Type::kInt64}));
  src->SetEmitBatchSize(4);
  src->SetColumnarEmit(true);

  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(rec->columnar_sizes, (std::vector<size_t>{4, 4}));
  src->Close(10);
  EXPECT_TRUE(sink->closed()) << "close flushes the partial batch, then EOS";
  EXPECT_EQ(rec->columnar_sizes, (std::vector<size_t>{4, 4, 2}));
  EXPECT_EQ(rec->singles, 0);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[i].IntAt(0), i);
    EXPECT_EQ(results[i].timestamp(), i);
  }
}

TEST(ColumnarSourceTest, SchemaDriftFlushesAndRestartsUnderNewSchema) {
  // No declared schema: the working schema is inferred from the first
  // element; a drifting element flushes the open batch and starts a new
  // one. Order must be preserved exactly.
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  ColumnarRecordingOp* rec = g.Add<ColumnarRecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  src->SetEmitBatchSize(8);
  src->SetColumnarEmit(true);

  src->Push(Tuple::OfInt(0, 0));
  src->Push(Tuple::OfInt(1, 1));
  src->Push(Tuple({Value("drift")}, 2));  // type change: flush {2}, restart
  src->Push(Tuple({Value("more")}, 3));
  src->Close(4);
  EXPECT_EQ(rec->columnar_sizes, (std::vector<size_t>{2, 2}));
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].IntAt(0), 0);
  EXPECT_EQ(results[1].IntAt(0), 1);
  EXPECT_EQ(results[2].StringAt(0), "drift");
  EXPECT_EQ(results[3].StringAt(0), "more");
}

TEST(ColumnarSourceTest, NonNativeOperatorMaterializesAtTheDoor) {
  // An operator without a columnar kernel must receive the rows the batch
  // holds — the transparent fallback of the §17 contract.
  class RowOnlyOp : public Operator {
   public:
    explicit RowOnlyOp(std::string name)
        : Operator(Kind::kOperator, std::move(name), 1) {}
    std::vector<size_t> row_batch_sizes;

   protected:
    void Process(const Tuple& tuple, int) override { Emit(tuple); }
    void ProcessBatch(TupleBatch&& batch, int) override {
      row_batch_sizes.push_back(batch.size());
      EmitBatch(std::move(batch));
    }
  };

  QueryGraph g;
  Source* src = g.Add<Source>("s");
  RowOnlyOp* op = g.Add<RowOnlyOp>("legacy");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, op).ok());
  ASSERT_TRUE(g.Connect(op, sink).ok());
  src->SetEmitBatchSize(4);
  src->SetColumnarEmit(true);
  for (int i = 0; i < 8; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(8);
  EXPECT_EQ(op->row_batch_sizes, (std::vector<size_t>{4, 4}))
      << "columnar batches materialize to row batches at a non-native gate";
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

// -- Typed kernels match the row path end-to-end -----------------------------

struct ChainPipeline {
  QueryGraph graph;
  Source* src = nullptr;
  CollectingSink* sink = nullptr;
};

/// src(int, string) -> typed sel(v % 3 != 0) -> typed map(v * 7) ->
/// proj(keep 0) -> sink.
void BuildTypedChain(ChainPipeline* p) {
  QueryBuilder qb(&p->graph);
  p->src = qb.AddSource("src");
  p->src->DeclareOutputSchema(
      MakeSchema({Value::Type::kInt64, Value::Type::kString}));
  Selection* sel = qb.Select(
      p->src, "sel",
      Int64ColumnPredicate{0, [](int64_t v) { return v % 3 != 0; }});
  MapOp* map = qb.Map(sel, "map",
                      Int64ColumnMap{0, [](int64_t v) { return v * 7; }});
  Projection* proj = qb.Project(map, "proj", {0});
  p->sink = qb.CollectSink(proj, "sink");
}

std::vector<Tuple> RunTypedChain(const EngineOptions& options, int feed) {
  ChainPipeline p;
  BuildTypedChain(&p);
  StreamEngine engine(&p.graph);
  EXPECT_TRUE(engine.Configure(options).ok());
  EXPECT_TRUE(engine.Start().ok());
  for (int i = 0; i < feed; ++i) {
    p.src->Push(Tuple({Value(int64_t{i}), Value("p" + std::to_string(i))}, i));
  }
  p.src->Close(feed);
  EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  engine.Stop();
  std::vector<Tuple> results = p.sink->TakeResults();
  std::sort(results.begin(), results.end());
  return results;
}

TEST(ColumnarEngineTest, TypedChainMatchesRowPathAcrossModes) {
  const int kFeed = 500;
  EngineOptions base;
  base.mode = ExecutionMode::kGts;
  const std::vector<Tuple> golden = RunTypedChain(base, kFeed);
  ASSERT_FALSE(golden.empty());
  for (ExecutionMode mode :
       {ExecutionMode::kDirect, ExecutionMode::kGts, ExecutionMode::kOts,
        ExecutionMode::kHmts}) {
    EngineOptions options;
    options.mode = mode;
    options.emit_batch_size = 64;
    options.columnar = true;
    EXPECT_EQ(RunTypedChain(options, kFeed), golden)
        << "columnar " << ExecutionModeToString(mode) << " diverged";
  }
}

TEST(ColumnarEngineTest, JoinKernelMatchesRowPath) {
  // Two sources -> typed-key SHJ. The window spans the whole stream, so
  // no tuple ever expires and the match multiset is exactly "all
  // key-equal cross-side pairs" regardless of cross-port arrival order
  // (which kGts does not fix). Emitted timestamps ride the probe side —
  // arrival-order-dependent — so the comparison is over value pairs only.
  auto run = [](bool columnar) {
    QueryGraph g;
    QueryBuilder qb(&g);
    Source* left = qb.AddSource("left");
    Source* right = qb.AddSource("right");
    left->DeclareOutputSchema(MakeSchema({Value::Type::kInt64}));
    right->DeclareOutputSchema(MakeSchema({Value::Type::kInt64}));
    SymmetricHashJoin* join = qb.HashJoin(left, right, "join", 1'000'000);
    CollectingSink* sink = qb.CollectSink(join, "sink");

    StreamEngine engine(&g);
    EngineOptions options;
    options.mode = ExecutionMode::kGts;
    options.emit_batch_size = columnar ? 16 : 1;
    options.columnar = columnar;
    EXPECT_TRUE(engine.Configure(options).ok());
    EXPECT_TRUE(engine.Start().ok());
    for (int i = 0; i < 300; ++i) {
      left->Push(Tuple::OfInt(i % 10, i));
      right->Push(Tuple::OfInt(i % 10, i));
    }
    left->Close(300);
    right->Close(300);
    EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
    EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
    engine.Stop();
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (const Tuple& t : sink->TakeResults()) {
      pairs.emplace_back(t.IntAt(0), t.IntAt(1));
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  const auto row_wise = run(false);
  // 30 occurrences of each of 10 keys per side -> 900 pairs per key.
  ASSERT_EQ(row_wise.size(), 9000u);
  EXPECT_EQ(run(true), row_wise);
}

TEST(ColumnarEngineTest, GroupedAggregateKernelMatchesRowPath) {
  // Single source (timestamp-monotone by construction) -> typed grouped
  // tumbling sum: the typed-column accumulation must reproduce the row
  // path, including the int64 -> double value coercion.
  auto run = [](bool columnar) {
    QueryGraph g;
    QueryBuilder qb(&g);
    Source* src = qb.AddSource("src");
    src->DeclareOutputSchema(
        MakeSchema({Value::Type::kInt64, Value::Type::kInt64}));
    TumblingAggregate::Options agg_options;
    agg_options.window_micros = 50;
    agg_options.kind = AggregateKind::kSum;
    agg_options.group_attr = 0;
    agg_options.value_attr = 1;
    TumblingAggregate* agg = qb.Tumbling(src, "agg", agg_options);
    CollectingSink* sink = qb.CollectSink(agg, "sink");

    StreamEngine engine(&g);
    EngineOptions options;
    options.mode = ExecutionMode::kGts;
    options.emit_batch_size = columnar ? 16 : 1;
    options.columnar = columnar;
    EXPECT_TRUE(engine.Configure(options).ok());
    EXPECT_TRUE(engine.Start().ok());
    for (int i = 0; i < 400; ++i) {
      src->Push(Tuple({Value(int64_t{i % 7}), Value(int64_t{i})}, i));
    }
    src->Close(400);
    EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
    EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
    engine.Stop();
    std::vector<Tuple> results = sink->TakeResults();
    std::sort(results.begin(), results.end());
    return results;
  };
  const std::vector<Tuple> row_wise = run(false);
  ASSERT_FALSE(row_wise.empty());
  EXPECT_EQ(run(true), row_wise);
}

// -- Queue transport: boxed batches and arena lifetime -----------------------

void RunColumnarQueueOrdering(size_t ring_capacity) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  QueueOp* q = g.Add<QueueOp>("q", ring_capacity);
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(true);
  q->SetBatchDelivery(true);
  src->DeclareOutputSchema(
      MakeSchema({Value::Type::kInt64, Value::Type::kString}));
  src->SetEmitBatchSize(8);
  src->SetColumnarEmit(true);

  constexpr int kFeed = 500;
  std::thread producer([&] {
    for (int i = 0; i < kFeed; ++i) {
      // Long payloads: every string lives in the batch arena; the batch
      // (and arena) must stay alive until the consumer materializes it.
      src->Push(Tuple(
          {Value(int64_t{i}), Value(std::string(64, 'a') + std::to_string(i))},
          i));
    }
    src->Close(kFeed);
  });
  while (!q->Exhausted()) q->DrainBatch(32);
  producer.join();

  EXPECT_TRUE(sink->closed());
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kFeed));
  for (int i = 0; i < kFeed; ++i) {
    ASSERT_EQ(results[i].IntAt(0), i) << "order broken at " << i;
    ASSERT_EQ(results[i].StringAt(1), std::string(64, 'a') + std::to_string(i))
        << "arena payload corrupted at " << i;
  }
}

TEST(ColumnarQueueTest, BoxedBatchesKeepOrderAndArenaAlive) {
  RunColumnarQueueOrdering(QueueOp::kDefaultRingCapacity);
}

TEST(ColumnarQueueTest, SpilloverKeepsOrderAndArenaAlive) {
  // Ring capacity 2: boxed batches overflow into the spillover deque, so
  // drains run the seq-merge path with boxed items in flight.
  RunColumnarQueueOrdering(2);
}

// -- Engine wiring: schema propagation and pooling ---------------------------

TEST(ColumnarEngineTest, ConfigurePropagatesSchemasAcrossPlacedQueues) {
  ChainPipeline p;
  BuildTypedChain(&p);
  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;  // places queues before the walk
  options.emit_batch_size = 64;
  options.columnar = true;
  ASSERT_TRUE(engine.Configure(options).ok());
  for (Node* node : p.graph.nodes()) {
    if (node->name() == "sel" || node->name() == "map") {
      Operator* op = dynamic_cast<Operator*>(node);
      ASSERT_NE(op, nullptr);
      EXPECT_NE(op->static_output_schema(), nullptr)
          << node->name() << " did not receive a schema through the queue";
    }
  }
  engine.Stop();
}

TEST(ColumnarEngineTest, PoolRecyclesBatchesInSteadyState) {
  // Steady state means the consumer keeps up: each 64-row batch is fed,
  // fully drained (sink observed), and only then is the next one pushed.
  // The worker's releases fill its thread-local free list (cap 8) and
  // overflow into the global pool, where the producer-side source must
  // find them — if it allocates fresh storage instead, the pool is dead.
  // (An unthrottled feed on one CPU can push every batch before the
  // worker releases any, which legitimately never hits the pool.)
  columnar::ResetPoolStatsForTest();
  ChainPipeline p;
  BuildTypedChain(&p);
  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kDirect;
  options.emit_batch_size = 64;
  options.columnar = true;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  int64_t fed = 0;
  size_t expected = 0;
  for (int chunk = 0; chunk < 32; ++chunk) {
    for (int i = 0; i < 64; ++i, ++fed) {
      if (fed % 3 != 0) ++expected;  // the chain's selection predicate
      p.src->Push(
          Tuple({Value(fed), Value("p" + std::to_string(fed))}, fed));
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (p.sink->size() < expected) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "sink stuck at " << p.sink->size() << "/" << expected;
      std::this_thread::yield();
    }
  }
  p.src->Close(fed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  const columnar::PoolStats stats = columnar::GetPoolStats();
  EXPECT_GT(stats.acquires, 0u);
  EXPECT_GT(stats.pool_hits, 0u)
      << "steady-state batches must come from the pool, not the allocator";
}

// -- Fallback contract: epochs, checkpoints, recovery ------------------------

TEST(ColumnarEngineTest, CheckpointedRunStaysExactWithColumnarEnabled) {
  // Armed epoch machinery unbundles/materializes at every gate it owns;
  // the run must still commit epochs and produce the row-path result.
  const int kFeed = 400;
  EngineOptions base;
  base.mode = ExecutionMode::kGts;
  const std::vector<Tuple> golden = RunTypedChain(base, kFeed);

  ChainPipeline p;
  BuildTypedChain(&p);
  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  options.emit_batch_size = 64;
  options.columnar = true;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < kFeed; ++i) {
    p.src->Push(Tuple({Value(int64_t{i}), Value("p" + std::to_string(i))}, i));
  }
  p.src->Close(kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_GT(engine.recovery()->coordinator().epochs_committed(), 0)
      << "epochs must still commit with the columnar layer enabled";
  engine.Stop();

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);
}

TEST(ColumnarEngineTest, SnapshotRestoreUnderColumnarFeedStaysExact) {
  // Snapshot a stateful operator mid-run while the source feeds columnar
  // batches, restore it, and finish: the fallback must keep the epoch
  // protocol byte-exact (state is only ever built from materialized rows).
  auto run = [](bool columnar) {
    QueryGraph g;
    QueryBuilder qb(&g);
    Source* src = qb.AddSource("src");
    src->DeclareOutputSchema(MakeSchema({Value::Type::kInt64}));
    TumblingAggregate::Options agg_options;
    agg_options.window_micros = 50;
    agg_options.kind = AggregateKind::kCount;
    TumblingAggregate* agg = qb.Tumbling(src, "agg", agg_options);
    CollectingSink* sink = qb.CollectSink(agg, "sink");

    StreamEngine engine(&g);
    EngineOptions options;
    options.mode = ExecutionMode::kGts;
    options.checkpoint_epoch_interval = 20;
    options.emit_batch_size = columnar ? 16 : 1;
    options.columnar = columnar;
    EXPECT_TRUE(engine.Configure(options).ok());
    EXPECT_TRUE(engine.Start().ok());
    for (int i = 0; i < 300; ++i) src->Push(Tuple::OfInt(i, i));
    src->Close(300);
    EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
    EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
    engine.Stop();
    std::vector<Tuple> results = sink->TakeResults();
    std::sort(results.begin(), results.end());
    return results;
  };
  const std::vector<Tuple> row_wise = run(false);
  ASSERT_FALSE(row_wise.empty());
  EXPECT_EQ(run(true), row_wise);
}

}  // namespace
}  // namespace flexstream

// The differential correctness tier (see src/testing/differential.h).
//
// Every test here compares scheduled executions against the
// single-threaded source-driven golden run. The matrix tests cover
// (graph seed) x (scheduler architecture) x (level-2 strategy) x
// (queue path) — well over 50 seeded combinations under plain ctest.
//
// Opt-in modes:
//   FLEXSTREAM_DIFF_SOAK=<n>     run n extra random graph seeds through
//                                the full matrix (soak; minutes, not ms).
//   FLEXSTREAM_DIFF_REPLAY=<f>   re-run exactly the scenario recorded in
//                                replay file f (written by the harness
//                                into its artifact dir on any failure).

#include "testing/differential.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/dot_export.h"
#include "test_util.h"

namespace flexstream {
namespace {

/// Runs the full default matrix for one spec and expects agreement.
void ExpectMatrixAgrees(const DiffSpec& spec, size_t* combos_run) {
  DiffRunOptions options;
  options.shrink = false;  // agreement expected; shrinking never triggers
  const DiffReport report =
      RunDifferential(spec, DefaultConfigMatrix(), options);
  if (combos_run != nullptr) *combos_run += report.configs_run;
  EXPECT_TRUE(report.ok);
  for (const DiffFailure& failure : report.failures) {
    ADD_FAILURE() << failure.config.Name() << ": " << failure.message
                  << (failure.replay_path.empty()
                          ? ""
                          : " (replay: " + failure.replay_path + ")");
  }
}

// -- The seeded matrix ------------------------------------------------------

class DifferentialMatrixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialMatrixTest, AllConfigsMatchGolden) {
  DiffSpec spec;
  spec.seed = GetParam();
  size_t combos = 0;
  ExpectMatrixAgrees(spec, &combos);
  EXPECT_GE(combos, 25u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialMatrixTest,
                         ::testing::Values(101u, 202u));

TEST(DifferentialMatrixTest, MatrixCoversAtLeastFiftyCombos) {
  // Two seeded instantiations x the default matrix: the tier's coverage
  // contract. Guards against the matrix silently shrinking.
  EXPECT_GE(2 * DefaultConfigMatrix().size(), 50u);
}

TEST(DifferentialMatrixTest, TreeGraphIsFullySequenceChecked) {
  // One source and no second inputs: every sink hangs off a pure chain, so
  // the harness applies the exact-sequence oracle everywhere.
  DiffSpec spec;
  spec.seed = 303;
  spec.source_count = 1;
  spec.second_input_probability = 0.0;
  spec.node_count = 10;
  const ExecutableDag dag = BuildDagForSpec(spec);
  ASSERT_FALSE(dag.order_checked.empty());
  for (bool ordered : dag.order_checked) EXPECT_TRUE(ordered);
  ExpectMatrixAgrees(spec, nullptr);
}

// -- Determinism ------------------------------------------------------------

TEST(DifferentialHarnessTest, DagAndGoldenAreDeterministic) {
  DiffSpec spec;
  spec.seed = 404;
  const ExecutableDag a = BuildDagForSpec(spec);
  const ExecutableDag b = BuildDagForSpec(spec);
  EXPECT_EQ(ToDot(*a.graph), ToDot(*b.graph));
  EXPECT_EQ(a.order_checked, b.order_checked);

  const SinkOutputs g1 = RunUnderConfig(spec, GoldenConfig());
  const SinkOutputs g2 = RunUnderConfig(spec, GoldenConfig());
  ASSERT_EQ(g1.per_sink.size(), g2.per_sink.size());
  for (size_t i = 0; i < g1.per_sink.size(); ++i) {
    EXPECT_EQ(g1.per_sink[i], g2.per_sink[i]) << "sink " << i;
  }
}

// -- Mutation test: the oracle must catch an injected reordering ------------

DiffConfig ReorderFaultConfig() {
  DiffConfig config;
  config.mode = ExecutionMode::kGts;
  config.strategy = StrategyKind::kFifo;
  // Force the locked MPSC path everywhere: the fault hooks the locked
  // drains, and burst arrival guarantees multi-element batches to reverse.
  config.queue_path = QueuePathMode::kForceMpsc;
  config.feed_before_start = true;
  config.fault = QueueOp::TestFault::kReorderDrainBatch;
  return config;
}

/// A tree spec (every sink sequence-checked): reversing a drained batch
/// keeps the multiset intact, so only the exact-sequence oracle can see it.
DiffSpec TreeSpec() {
  DiffSpec spec;
  spec.seed = 505;
  spec.source_count = 1;
  spec.second_input_probability = 0.0;
  spec.node_count = 8;
  return spec;
}

TEST(DifferentialMutationTest, InjectedReorderingIsCaught) {
  const DiffSpec spec = TreeSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());
  const SinkOutputs mutated = RunUnderConfig(spec, ReorderFaultConfig());
  const std::string mismatch = CompareOutputs(golden, mutated);
  ASSERT_FALSE(mismatch.empty())
      << "the sequence oracle must catch a pure reordering";
  EXPECT_NE(mismatch.find("sequence mismatch"), std::string::npos) << mismatch;
}

TEST(DifferentialMutationTest, ReportShrinksAndDumpsArtifacts) {
  const DiffSpec spec = TreeSpec();
  DiffRunOptions options;
  options.shrink = true;
  options.shrink_retries = 1;  // the fault is deterministic; one run suffices
  options.artifact_dir = ::testing::TempDir() + "/flexstream_diff_artifacts";
  const DiffReport report =
      RunDifferential(spec, {ReorderFaultConfig()}, options);
  ASSERT_FALSE(report.ok);
  ASSERT_EQ(report.failures.size(), 1u);
  const DiffFailure& failure = report.failures[0];
  // Shrinking must have made progress on at least one axis.
  EXPECT_LT(failure.spec.node_count * failure.spec.feed_count,
            spec.node_count * spec.feed_count);
  // The shrunk scenario still fails.
  const SinkOutputs golden = RunUnderConfig(failure.spec, GoldenConfig());
  const SinkOutputs mutated =
      RunUnderConfig(failure.spec, ReorderFaultConfig());
  EXPECT_FALSE(CompareOutputs(golden, mutated).empty());
  // Artifacts: a DOT dump and a replay file that parses back to the
  // failing scenario.
  ASSERT_FALSE(failure.dot_path.empty());
  ASSERT_FALSE(failure.replay_path.empty());
  std::ifstream dot(failure.dot_path);
  ASSERT_TRUE(dot.good());
  std::ifstream replay_in(failure.replay_path);
  ASSERT_TRUE(replay_in.good());
  std::stringstream buffer;
  buffer << replay_in.rdbuf();
  DiffSpec replay_spec;
  DiffConfig replay_config;
  std::string error;
  ASSERT_TRUE(ParseReplay(buffer.str(), &replay_spec, &replay_config, &error))
      << error;
  EXPECT_EQ(replay_spec.seed, failure.spec.seed);
  EXPECT_EQ(replay_spec.node_count, failure.spec.node_count);
  EXPECT_EQ(replay_spec.feed_count, failure.spec.feed_count);
  EXPECT_EQ(replay_config.Name(), failure.config.Name());
}

// -- Replay files -----------------------------------------------------------

TEST(DifferentialReplayTest, FormatParseRoundTrip) {
  DiffSpec spec;
  spec.seed = 987;
  spec.node_count = 11;
  spec.source_count = 3;
  spec.second_input_probability = 0.25;
  spec.feed_count = 123;
  spec.max_burn_micros = 1.5;
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.strategy = StrategyKind::kSegment;
  config.placement = PlacementKind::kChain;
  config.queue_path = QueuePathMode::kForceMpsc;
  config.ring_capacity = 4;
  config.feed_before_start = true;
  config.fault = QueueOp::TestFault::kReorderDrainBatch;
  config.emit_batch_size = 64;

  DiffSpec parsed_spec;
  DiffConfig parsed_config;
  std::string error;
  ASSERT_TRUE(ParseReplay(FormatReplay(spec, config), &parsed_spec,
                          &parsed_config, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_EQ(parsed_spec.node_count, spec.node_count);
  EXPECT_EQ(parsed_spec.source_count, spec.source_count);
  EXPECT_DOUBLE_EQ(parsed_spec.second_input_probability,
                   spec.second_input_probability);
  EXPECT_EQ(parsed_spec.feed_count, spec.feed_count);
  EXPECT_DOUBLE_EQ(parsed_spec.max_burn_micros, spec.max_burn_micros);
  EXPECT_EQ(parsed_config.mode, config.mode);
  EXPECT_EQ(parsed_config.strategy, config.strategy);
  EXPECT_EQ(parsed_config.placement, config.placement);
  EXPECT_EQ(parsed_config.queue_path, config.queue_path);
  EXPECT_EQ(parsed_config.ring_capacity, config.ring_capacity);
  EXPECT_EQ(parsed_config.feed_before_start, config.feed_before_start);
  EXPECT_EQ(parsed_config.fault, config.fault);
  EXPECT_EQ(parsed_config.emit_batch_size, config.emit_batch_size);
  EXPECT_EQ(parsed_config.Name(), config.Name());
}

TEST(DifferentialReplayTest, RejectsMalformedInput) {
  DiffSpec spec;
  DiffConfig config;
  std::string error;
  EXPECT_FALSE(ParseReplay("no_equals_sign", &spec, &config, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseReplay("mode=warp-drive\n", &spec, &config, &error));
  EXPECT_FALSE(ParseReplay("unknown_key=1\n", &spec, &config, &error));
  EXPECT_FALSE(ParseReplay("seed=not-a-number\n", &spec, &config, &error));
  EXPECT_FALSE(ParseReplay("source_count=0\n", &spec, &config, &error));
}

TEST(DifferentialReplayTest, ReplayFromEnvironment) {
  const char* path = std::getenv("FLEXSTREAM_DIFF_REPLAY");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "set FLEXSTREAM_DIFF_REPLAY=<file> to replay a failure";
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open replay file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  DiffSpec spec;
  DiffConfig config;
  std::string error;
  ASSERT_TRUE(ParseReplay(buffer.str(), &spec, &config, &error)) << error;
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());
  const SinkOutputs candidate = RunUnderConfig(spec, config);
  EXPECT_EQ(CompareOutputs(golden, candidate), "")
      << "replayed scenario [" << config.Name() << "] still mismatches";
}

// -- Soak mode --------------------------------------------------------------

TEST(DifferentialSoakTest, RandomSeedsThroughFullMatrix) {
  const char* env = std::getenv("FLEXSTREAM_DIFF_SOAK");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "set FLEXSTREAM_DIFF_SOAK=<n> to soak n random seeds";
  }
  const int rounds = std::max(1, std::atoi(env));
  for (int round = 0; round < rounds; ++round) {
    DiffSpec spec;
    spec.seed = 1000 + static_cast<uint64_t>(round) * 7919;
    // Vary the shape across rounds too.
    spec.node_count = 10 + round % 12;
    spec.source_count = 1 + round % 3;
    SCOPED_TRACE("soak round " + std::to_string(round) + " seed " +
                 std::to_string(spec.seed));
    ExpectMatrixAgrees(spec, nullptr);
  }
}

}  // namespace
}  // namespace flexstream

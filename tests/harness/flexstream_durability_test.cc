// Durability tier: cold-restart differential sweeps over the durable
// snapshot store (DESIGN.md §16). Each matrix configuration runs the
// scenario as several engine *incarnations* sharing one on-disk
// checkpoint directory — every teardown discards all volatile state, so
// the only way the final incarnation can match the undisturbed golden run
// exactly is if ColdRestart() rebuilt operator state and replay cursors
// from disk correctly, including under injected disk faults (torn
// writes, at-rest corruption, ENOSPC, fsync failures) that force
// fallback to an earlier intact epoch.
//
// Runs under the `check-durability` CMake target
// (ctest -R "Durability|SnapshotStore|StateSerde|ColdRestart|ReplayTruncation").

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "recovery/recovery_manager.h"
#include "recovery/replay_buffer.h"
#include "stats/report.h"
#include "testing/differential.h"
#include "tuple/tuple.h"
#include "util/status.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

DiffSpec DurabilitySpec() {
  DiffSpec spec;
  spec.seed = 303;
  spec.node_count = 12;
  spec.feed_count = 400;
  return spec;
}

TEST(DurabilitySweepTest, ColdRestartMatrixMatchesGoldenExactly) {
  const DiffSpec spec = DurabilitySpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  for (const DiffConfig& config : DurabilityConfigMatrix()) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    // Exact accounting: cold restarts (and disk-fault fallbacks) must be
    // invisible in the results — nothing shed, output identical.
    EXPECT_EQ(out.dropped, 0);
    EXPECT_GT(out.committed_epoch, 0u);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

// ---------------------------------------------------------------------------
// Engine-level cold restart on a hand-built stateful pipeline (mirrors
// tests/recovery_test.cc so failures here are easy to localize).

struct Pipeline {
  std::unique_ptr<QueryGraph> graph;
  Source* source = nullptr;
  Source* source2 = nullptr;
  CollectingSink* sink = nullptr;
};

/// source -> select -> join(source2) -> sink: durable state in the join
/// and the sink, two replay cursors.
Pipeline BuildPipeline() {
  Pipeline p;
  p.graph = std::make_unique<QueryGraph>();
  QueryBuilder qb(p.graph.get());
  p.source = qb.AddSource("src");
  p.source2 = qb.AddSource("src2");
  Selection* sel =
      qb.Select(p.source, "sel", [](const Tuple&) { return true; });
  SymmetricHashJoin* join =
      qb.HashJoin(sel, p.source2, "join", 1'000'000'000);
  p.sink = qb.CollectSink(join, "sink");
  return p;
}

/// The deterministic input: element i of the stream is the same in every
/// incarnation, so any prefix of a re-drive matches the original feed.
void PushPrefix(const Pipeline& p, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    p.source->Push(Tuple::OfInt(i % 10, i + 1));
    p.source2->Push(Tuple::OfInt(i % 10, i + 1));
  }
}

void Feed(const Pipeline& p, int count) {
  PushPrefix(p, 0, count);
  p.source->Close(count);
  p.source2->Close(count);
}

std::vector<Tuple> SortedGolden(int feed) {
  Pipeline p = BuildPipeline();
  Feed(p, feed);
  std::vector<Tuple> golden = p.sink->TakeResults();
  std::sort(golden.begin(), golden.end());
  return golden;
}

std::string FreshCheckpointDir(const std::string& tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("flexstream_durability_test_" + tag + "_" +
       std::to_string(static_cast<long>(::getpid())));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir.string();
}

TEST(ColdRestartTest, ResumesExactlyAfterProcessDeath) {
  const int kFeed = 300;
  const std::vector<Tuple> golden = SortedGolden(kFeed);
  const std::string dir = FreshCheckpointDir("resume");

  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  options.durable_checkpoint_dir = dir;

  // Incarnation 1: feed half the stream without closing, wait until at
  // least one epoch is durably on disk, then tear everything down — the
  // in-process equivalent of a process death (graph, engine, and all
  // replay buffers are destroyed; only the directory survives).
  {
    Pipeline p = BuildPipeline();
    StreamEngine engine(p.graph.get());
    ASSERT_TRUE(engine.Configure(options).ok());
    ASSERT_TRUE(engine.Start().ok());
    PushPrefix(p, 0, kFeed / 2);
    ASSERT_NE(engine.recovery(), nullptr);
    ASSERT_NE(engine.recovery()->snapshot_store(), nullptr);
    const auto deadline = std::chrono::steady_clock::now() + kWait;
    while (engine.recovery()->snapshot_store()->stats().epochs_written == 0) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "no epoch persisted within the deadline";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    engine.Stop();
  }

  // Incarnation 2: rebuild from scratch, restore from disk, re-drive the
  // full deterministic stream. The durable cursors make the sources
  // swallow the committed prefix, so the final output is exactly the
  // undisturbed run's.
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  ASSERT_TRUE(engine.Configure(options).ok());
  Result<uint64_t> restored = engine.ColdRestart();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_GT(*restored, 0u);
  ASSERT_TRUE(engine.Start().ok());
  Feed(p, kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);

  // The durability stats table reflects the restored store.
  ASSERT_NE(engine.recovery(), nullptr);
  const Table table = BuildDurabilityTable(*engine.recovery());
  EXPECT_GT(table.row_count(), 0u);
  engine.Stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

TEST(ColdRestartTest, RefusedWithoutDurableDir) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());

  // Not configured yet.
  Result<uint64_t> unconfigured = engine.ColdRestart();
  ASSERT_FALSE(unconfigured.ok());
  EXPECT_EQ(unconfigured.status().code(), StatusCode::kFailedPrecondition);

  // Configured, but without a durable directory.
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  ASSERT_TRUE(engine.Configure(options).ok());
  Result<uint64_t> no_dir = engine.ColdRestart();
  ASSERT_FALSE(no_dir.ok());
  EXPECT_EQ(no_dir.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ColdRestartTest, EmptyStoreIsAFreshStart) {
  const std::string dir = FreshCheckpointDir("empty");
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  options.durable_checkpoint_dir = dir;
  ASSERT_TRUE(engine.Configure(options).ok());

  Result<uint64_t> restored = engine.ColdRestart();
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(*restored, 0u);  // nothing on disk: epoch 0, no skip

  ASSERT_TRUE(engine.Start().ok());
  Feed(p, 100);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok());
  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, SortedGolden(100));
  engine.Stop();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// ---------------------------------------------------------------------------
// Replay-buffer truncation diagnostics & durable cursor accounting.

TEST(ReplayTruncationTest, StatusNamesSourceAndFirstDroppedEpoch) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("sensor");
  qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 4);
  src->ArmEpochs(2, &buffer, &gate);
  EXPECT_TRUE(buffer.truncation_status().ok());

  // Cap 4 at interval 2: elements 1-4 fill epochs 1-2; element 5 (the
  // first of epoch 3) overflows the buffer.
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i + 1));
  ASSERT_TRUE(buffer.truncated());

  const Status status = buffer.truncation_status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The structured diagnosis: which source, and the first epoch whose
  // replay suffix is incomplete — what the engine logs when it abandons
  // live recovery.
  EXPECT_NE(status.message().find("sensor"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("epoch 3"), std::string::npos)
      << status.message();
}

TEST(DurabilityCursorTest, RecordedThroughIsStreamAbsolute) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 0);
  src->ArmEpochs(2, &buffer, &gate);
  for (int i = 0; i < 6; ++i) src->Push(Tuple::OfInt(i, i + 1));

  EXPECT_EQ(buffer.RecordedThrough(1), 2u);
  EXPECT_EQ(buffer.RecordedThrough(2), 4u);
  EXPECT_EQ(buffer.RecordedThrough(3), 6u);
  // Committing (trimming) must not disturb the cursors still in
  // contract: RecordedThrough(E) stays exact for E at or past the last
  // trim, which is how PersistEpoch uses it (persist, then trim, with
  // epochs committing monotonically).
  buffer.TrimThrough(2);
  EXPECT_EQ(buffer.RecordedThrough(2), 4u);
  EXPECT_EQ(buffer.RecordedThrough(3), 6u);
}

// After a cold restart the resume-skipped prefix never reaches the fresh
// buffer's observer; SetRecordedBase seeds the count so cursors persisted
// by the new incarnation stay stream-absolute (what a *second* cold
// restart will skip).
TEST(DurabilityCursorTest, RecordedBaseKeepsCursorsAbsoluteAcrossRestart) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 0);
  buffer.SetRecordedBase(100);  // restored cursor: 100 elements committed
  src->ArmEpochs(2, &buffer, &gate);
  for (int i = 0; i < 4; ++i) src->Push(Tuple::OfInt(i, i + 1));

  EXPECT_EQ(buffer.RecordedThrough(1), 102u);
  EXPECT_EQ(buffer.RecordedThrough(2), 104u);
}

// Replay files round-trip the durability dimensions so a failing
// cold-restart scenario can be re-run exactly.
TEST(DurabilityReplayTest, RoundTripsDurabilityFields) {
  const DiffSpec spec = DurabilitySpec();
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.checkpoint_epoch_interval = 50;
  config.cold_restarts = 2;
  config.disk_fault = "torn-write";

  DiffSpec parsed_spec;
  DiffConfig parsed;
  std::string error;
  ASSERT_TRUE(
      ParseReplay(FormatReplay(spec, config), &parsed_spec, &parsed, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_EQ(parsed.checkpoint_epoch_interval, config.checkpoint_epoch_interval);
  EXPECT_EQ(parsed.cold_restarts, config.cold_restarts);
  EXPECT_EQ(parsed.disk_fault, config.disk_fault);
  EXPECT_EQ(parsed.Name(), config.Name());
}

}  // namespace
}  // namespace flexstream

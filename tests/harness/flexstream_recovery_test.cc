// Recovery tier: the differential harness run under kill/revive chaos
// with checkpointing armed (testing/chaos.h + src/recovery/). A mid-graph
// operator dies mid-run; the engine must rewind to the last committed
// epoch, replay the retained source suffix, and finish with output that
// matches the undisturbed golden run *exactly* — the CollectingSink
// truncate-on-restore gives exact epoch + arrival-sequence dedup, so no
// relaxed compare applies (exact accounting, not sub-multiset).
//
// Runs under the `check-recovery` CMake target (ctest -R "Recovery").

#include <string>

#include <gtest/gtest.h>

#include "testing/differential.h"

namespace flexstream {
namespace {

DiffSpec RecoverySpec() {
  DiffSpec spec;
  spec.seed = 202;
  spec.node_count = 12;
  spec.feed_count = 400;
  return spec;
}

/// Picks a kill target that is guaranteed a full stream of deliveries: an
/// operator fed directly by a source in the logical (queue-free) graph.
/// The same spec rebuilds the same dag, so the name is stable across runs.
std::string PickKillTarget(const DiffSpec& spec) {
  const ExecutableDag dag = BuildDagForSpec(spec);
  for (Source* src : dag.sources) {
    for (const auto& edge : static_cast<const Node*>(src)->outputs()) {
      const Node* target = edge.target;
      if (!target->is_sink() && !target->is_queue()) return target->name();
    }
  }
  return "";
}

TEST(RecoverySweepTest, KillReviveMatrixMatchesGoldenExactly) {
  const DiffSpec spec = RecoverySpec();
  const std::string kill_target = PickKillTarget(spec);
  ASSERT_FALSE(kill_target.empty())
      << "generated dag has no source-fed operator to kill";
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  for (const DiffConfig& config : RecoveryConfigMatrix(kill_target, 120)) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    // The kill was absorbed: the run ends healthy, having actually
    // recovered (a sweep that never killed proves nothing).
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    EXPECT_GE(out.recoveries, 1);
    EXPECT_EQ(out.recoveries, config.chaos_kills);
    EXPECT_GT(out.replayed_elements, 0);
    // Exact accounting: nothing shed, nothing dropped, output identical.
    EXPECT_EQ(out.dropped, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

// Checkpointing without failures must be output-invisible across the
// standard architectures.
TEST(RecoverySweepTest, CheckpointingAloneChangesNothing) {
  const DiffSpec spec = RecoverySpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  for (ExecutionMode mode :
       {ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    DiffConfig config;
    config.mode = mode;
    config.checkpoint_epoch_interval = 50;
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    EXPECT_EQ(out.recoveries, 0);
    EXPECT_GT(out.committed_epoch, 0u);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

// Replay files round-trip the recovery dimensions so a failing kill
// scenario can be re-run exactly.
TEST(RecoveryReplayTest, RoundTripsRecoveryFields) {
  const DiffSpec spec = RecoverySpec();
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.strategy = StrategyKind::kChain;
  config.checkpoint_epoch_interval = 50;
  config.chaos_kill_operator = "n3";
  config.chaos_kill_after = 120;
  config.chaos_kills = 2;

  DiffSpec parsed_spec;
  DiffConfig parsed;
  std::string error;
  ASSERT_TRUE(
      ParseReplay(FormatReplay(spec, config), &parsed_spec, &parsed, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_EQ(parsed.checkpoint_epoch_interval, config.checkpoint_epoch_interval);
  EXPECT_EQ(parsed.chaos_kill_operator, config.chaos_kill_operator);
  EXPECT_EQ(parsed.chaos_kill_after, config.chaos_kill_after);
  EXPECT_EQ(parsed.chaos_kills, config.chaos_kills);
  EXPECT_EQ(parsed.Name(), config.Name());
}

}  // namespace
}  // namespace flexstream

// Columnar tier: the differential harness with the typed columnar layer
// enabled (EngineOptions::columnar, DESIGN.md §17). Sources scatter the
// seeded stream into typed ColumnarBatches, the generated DAG's typed
// Selection/Map kernels run vectorized, queues box whole batches, and
// every fallback boundary (non-native operators, chaos fault hooks, armed
// epoch alignment, shard replica stamping) materializes back to rows. The
// sweep proves the representation change is output-invisible: every
// columnar configuration — including chaos, kill/revive recovery, and
// sharded ones — must match the row-wise golden byte-for-byte.
//
// Runs under the `check-columnar` CMake target (ctest -R "Columnar").

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/differential.h"

namespace flexstream {
namespace {

DiffSpec ColumnarSpec() {
  DiffSpec spec;
  spec.seed = 404;
  spec.node_count = 12;
  spec.feed_count = 400;
  return spec;
}

/// The columnar configurations of a matrix (the row-wise ones are covered
/// by their own tiers).
std::vector<DiffConfig> ColumnarOnly(std::vector<DiffConfig> configs) {
  std::vector<DiffConfig> out;
  for (DiffConfig& config : configs) {
    if (config.columnar) out.push_back(std::move(config));
  }
  return out;
}

TEST(ColumnarSweepTest, DefaultMatrixMatchesGolden) {
  const DiffSpec spec = ColumnarSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  const std::vector<DiffConfig> configs = ColumnarOnly(DefaultConfigMatrix());
  ASSERT_FALSE(configs.empty()) << "default matrix lost its columnar axis";
  for (const DiffConfig& config : configs) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    EXPECT_EQ(out.dropped, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

TEST(ColumnarSweepTest, ChaosMatrixMatchesGolden) {
  const DiffSpec spec = ColumnarSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  const std::vector<DiffConfig> configs = ColumnarOnly(ChaosConfigMatrix());
  ASSERT_FALSE(configs.empty()) << "chaos matrix lost its columnar axis";
  for (const DiffConfig& config : configs) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    if (config.queue_max_elements == 0) {
      EXPECT_EQ(out.dropped, 0);
    }
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

TEST(ColumnarSweepTest, ShardMatrixMatchesGolden) {
  const DiffSpec spec = ColumnarSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  const std::vector<DiffConfig> configs = ColumnarOnly(ShardConfigMatrix());
  ASSERT_FALSE(configs.empty()) << "shard matrix lost its columnar axis";
  for (const DiffConfig& config : configs) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    EXPECT_EQ(out.dropped, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

/// Picks a kill target fed directly by a source (same heuristic as the
/// recovery tier — the spec deterministically rebuilds the same dag).
std::string PickKillTarget(const DiffSpec& spec) {
  const ExecutableDag dag = BuildDagForSpec(spec);
  for (Source* src : dag.sources) {
    for (const auto& edge : static_cast<const Node*>(src)->outputs()) {
      const Node* target = edge.target;
      if (!target->is_sink() && !target->is_queue()) return target->name();
    }
  }
  return "";
}

TEST(ColumnarRecoverySweepTest, KillReviveMatchesGoldenExactly) {
  const DiffSpec spec = ColumnarSpec();
  const std::string kill_target = PickKillTarget(spec);
  ASSERT_FALSE(kill_target.empty())
      << "generated dag has no source-fed operator to kill";
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  const std::vector<DiffConfig> configs =
      ColumnarOnly(RecoveryConfigMatrix(kill_target, 120));
  ASSERT_FALSE(configs.empty()) << "recovery matrix lost its columnar axis";
  for (const DiffConfig& config : configs) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    EXPECT_GE(out.recoveries, 1);
    EXPECT_GT(out.replayed_elements, 0);
    EXPECT_EQ(out.dropped, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

// Replay files round-trip the columnar flag so a failing columnar scenario
// can be re-run exactly.
TEST(ColumnarReplayTest, RoundTripsColumnarField) {
  const DiffSpec spec = ColumnarSpec();
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.emit_batch_size = 64;
  config.columnar = true;

  DiffSpec parsed_spec;
  DiffConfig parsed;
  std::string error;
  ASSERT_TRUE(
      ParseReplay(FormatReplay(spec, config), &parsed_spec, &parsed, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_TRUE(parsed.columnar);
  EXPECT_EQ(parsed.Name(), config.Name());
  EXPECT_NE(config.Name().find("+col"), std::string::npos);
}

}  // namespace
}  // namespace flexstream

// Regression tests for the SPSC ring-full spillover path (satellite of
// the differential tier): with a tiny ring every burst overflows into the
// locked spill deque, and the consumer's seq-merge drain must interleave
// ring and spill elements back into exact arrival (FIFO) order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "placement/producer_annotation.h"
#include "test_util.h"

namespace flexstream {
namespace {

TEST(QueueSpillTest, SeqMergeDrainRestoresFifoAcrossSpillBoundary) {
  // No consumer while pushing: a 2-slot ring forces everything past the
  // second element into the spill deque, so the subsequent drain *must*
  // merge the two stores.
  testutil::QueueRig rig(/*ring_capacity=*/2);
  AnnotateSingleProducerQueues({rig.queue}, nullptr);
  ASSERT_TRUE(rig.queue->single_producer());

  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(kCount);
  EXPECT_GT(rig.queue->ring_pushes(), 0) << "ring never used";
  EXPECT_GT(rig.queue->locked_pushes(), 0) << "spillover never hit";

  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(7);
  EXPECT_TRUE(rig.sink->closed());
  const std::vector<Tuple> results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i].IntAt(0), i)
        << "FIFO violated across the ring/spill merge at " << i;
  }
}

TEST(QueueSpillTest, EngineWithTinyRingsPreservesChainOrder) {
  // A full engine run where *every* placed queue has a 2-slot ring: the
  // stream is buffered before the workers start, so nearly all of it
  // travels through the spill path, and the chain's sink must still see
  // the exact input sequence.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(10.0);
  Node* keep = qb.Select(src, "keep", [](const Tuple&) { return true; });
  keep->SetSelectivity(1.0);
  keep->SetCostMicros(0.5);
  Node* shift = qb.Map(keep, "shift", [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) + 1, t.timestamp());
  });
  shift->SetSelectivity(1.0);
  shift->SetCostMicros(0.5);
  CollectingSink* sink = qb.CollectSink(shift, "sink");

  for (ExecutionMode mode : {ExecutionMode::kGts, ExecutionMode::kOts}) {
    SCOPED_TRACE(ExecutionModeToString(mode));
    StreamEngine engine(&graph);
    EngineOptions opt;
    opt.mode = mode;
    opt.queue_ring_capacity = 2;
    ASSERT_TRUE(engine.Configure(opt).ok());

    constexpr int kCount = 2000;
    for (int i = 0; i < kCount; ++i) src->Push(Tuple::OfInt(i, i));
    src->Close(kCount);
    ASSERT_TRUE(engine.Start().ok());
    engine.WaitUntilFinished();

    bool some_queue_spilled = false;
    for (const QueueOp* queue : engine.queues()) {
      if (queue->single_producer() && queue->locked_pushes() > 0 &&
          queue->ring_pushes() > 0) {
        some_queue_spilled = true;
      }
    }
    EXPECT_TRUE(some_queue_spilled)
        << "tiny rings should force the spillover path";

    const std::vector<Tuple> results = sink->TakeResults();
    ASSERT_EQ(results.size(), static_cast<size_t>(kCount));
    for (int i = 0; i < kCount; ++i) {
      ASSERT_EQ(results[i].IntAt(0), i + 1)
          << "sequence broken after spill/merge at " << i;
    }
    ASSERT_TRUE(engine.ResetForRerun().ok());
  }
}

TEST(QueueSpillTest, ConcurrentSpillMergeKeepsOrderUnderOts) {
  // Producer and consumers race on the tiny ring: spillover toggles on and
  // off as the ring fills and frees, exercising merge at the boundary in
  // both directions.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(10.0);
  Node* keep = qb.Select(src, "keep", [](const Tuple&) { return true; });
  keep->SetSelectivity(1.0);
  CollectingSink* sink = qb.CollectSink(keep, "sink");

  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kOts;
  opt.queue_ring_capacity = 2;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  constexpr int kCount = 20'000;
  for (int i = 0; i < kCount; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(kCount);
  engine.WaitUntilFinished();

  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i].IntAt(0), i) << "FIFO violated at " << i;
  }
}

}  // namespace
}  // namespace flexstream

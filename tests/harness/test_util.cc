#include "test_util.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace flexstream {
namespace testutil {

std::vector<Tuple> Sorted(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

QueueRig::QueueRig(size_t ring_capacity) {
  src = graph.Add<Source>("src");
  queue = graph.Add<QueueOp>("q", ring_capacity);
  sink = graph.Add<CollectingSink>("sink");
  EXPECT_TRUE(graph.Connect(src, queue).ok());
  EXPECT_TRUE(graph.Connect(queue, sink).ok());
}

LinearPipelineFixture::LinearPipelineFixture() {
  src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  src->SetSelectivity(1.0);
  Node* sel = qb.Select(src, "keep", Selection::IntAttrLessThan(700));
  sel->SetSelectivity(0.7);
  sel->SetCostMicros(1.0);
  Node* map = qb.Map(sel, "double", [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) * 2, t.timestamp());
  });
  map->SetSelectivity(1.0);
  map->SetCostMicros(1.0);
  sink = qb.CollectSink(map, "sink");
}

void LinearPipelineFixture::PushRandom(Rng* rng, int begin, int end) {
  for (int i = begin; i < end; ++i) {
    const int64_t v = rng->UniformInt(0, 999);
    if (v < 700) ++expected_results;
    src->Push(Tuple::OfInt(v, i));
  }
}

void LinearPipelineFixture::Feed() {
  Rng rng(7);
  PushRandom(&rng, 0, 1000);
  src->Close(1000);
}

}  // namespace testutil
}  // namespace flexstream

// Simulator vs real execution agreement (satellite of the differential
// tier): for pipelines whose predicates match the simulator's fractional
// selectivity credits *exactly*, the virtual-time simulator and a real
// scheduled execution must report identical sink tuple counts.
//
// The trick: the simulator forwards floor(accumulated selectivity)
// elements. A modulo predicate over a sequential input stream (values
// 0, 1, 2, ... m-1, 0, 1, ...) passes exactly sel * n elements whenever
// m divides into the stream length — so real counts equal simulated
// counts with no tolerance.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "sim/simulator.h"
#include "workload/nexmark.h"

namespace flexstream {
namespace {

constexpr int kCount = 1000;

// src -> even (v%2==0, sel 0.5) -> tenth (v%10==0, sel 0.2) -> sink.
// Sequential input 0..999: 500 evens, of which 100 are multiples of 10.
struct ModuloChain {
  QueryGraph graph;
  Source* src;
  Node* even;
  Node* tenth;
  CountingSink* sink;

  ModuloChain() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    src->SetInterarrivalMicros(10.0);
    even = qb.Select(src, "even",
                     [](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
    even->SetSelectivity(0.5);
    even->SetCostMicros(1.0);
    tenth = qb.Select(even, "tenth",
                      [](const Tuple& t) { return t.IntAt(0) % 10 == 0; });
    tenth->SetSelectivity(0.2);  // 100 of the 500 evens end in 0
    tenth->SetCostMicros(1.0);
    sink = qb.CountSink(tenth, "sink");
    sink->SetCostMicros(0.0);
    sink->SetSelectivity(1.0);
  }

  void Feed() {
    for (int i = 0; i < kCount; ++i) src->Push(Tuple::OfInt(i, i));
    src->Close(kCount);
  }
};

/// `make` maps the fixture's graph to a thread configuration
/// (MakeGtsConfig / MakeOtsConfig / MakeDirectConfig).
int64_t SimulatedResults(std::vector<SimThread> (*make)(const QueryGraph&)) {
  ModuloChain fx;
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedules = {
      {fx.src, {{kCount, 100'000.0}}}};
  auto result = Simulate(fx.graph, schedules, make(fx.graph), SimOptions());
  EXPECT_TRUE(result.ok());
  return result.ok() ? result->results : -1;
}

int64_t RealResults(ExecutionMode mode) {
  ModuloChain fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = mode;
  EXPECT_TRUE(engine.Configure(opt).ok());
  if (mode != ExecutionMode::kSourceDriven) {
    EXPECT_TRUE(engine.Start().ok());
  }
  fx.Feed();
  engine.WaitUntilFinished();
  return fx.sink->count();
}

TEST(SimAgreementTest, SimulatorConfigsAgreeWithEachOther) {
  EXPECT_EQ(SimulatedResults(MakeGtsConfig), 100);
  EXPECT_EQ(SimulatedResults(MakeOtsConfig), 100);
  EXPECT_EQ(SimulatedResults(MakeDirectConfig), 100);
}

TEST(SimAgreementTest, RealExecutionMatchesSimulatedCounts) {
  const int64_t simulated = SimulatedResults(MakeGtsConfig);
  ASSERT_EQ(simulated, 100);
  for (ExecutionMode mode :
       {ExecutionMode::kSourceDriven, ExecutionMode::kDirect,
        ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    EXPECT_EQ(RealResults(mode), simulated) << ExecutionModeToString(mode);
  }
}

TEST(SimAgreementTest, AgreementInvariantToSimulatorKnobs) {
  // Counts are a semantic property: neither the strategy nor the CPU
  // budget of the simulated configuration may change them.
  ModuloChain fx;
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedules = {
      {fx.src, {{kCount, 100'000.0}}}};
  for (StrategyKind strategy :
       {StrategyKind::kFifo, StrategyKind::kRoundRobin, StrategyKind::kChain,
        StrategyKind::kSegment}) {
    for (int cpus : {1, 2}) {
      SimOptions opt;
      opt.strategy = strategy;
      opt.cpus = cpus;
      auto result =
          Simulate(fx.graph, schedules, MakeOtsConfig(fx.graph), opt);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->results, 100)
          << StrategyKindToString(strategy) << "/" << cpus << " cpus";
    }
  }
}

TEST(SimAgreementTest, NexmarkFilterQueryAgreesWithRealEngine) {
  // Production-shaped agreement (DESIGN.md §14): the NEXMark filter query
  // over a pregenerated Zipf-skewed bid stream. The realized selectivity is
  // data-dependent, so it is *measured* on the stream and stamped onto the
  // filter node — then the simulator's fractional credits must reproduce
  // the real engine's survivor count exactly.
  nexmark::NexmarkConfig cfg;
  const int64_t n = 10'000;
  const std::vector<Tuple> bids = nexmark::GenerateBids(cfg, /*seed=*/42, n);
  const double selectivity = nexmark::MeasuredFilterSelectivity(cfg, bids);
  ASSERT_GT(selectivity, 0.0);

  // Real scheduled execution.
  int64_t real = -1;
  {
    QueryGraph graph;
    nexmark::QueryHandle h = nexmark::BuildFilterQuery(&graph, cfg, {});
    StreamEngine engine(&graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kGts;
    ASSERT_TRUE(engine.Configure(opt).ok());
    ASSERT_TRUE(engine.Start().ok());
    for (const Tuple& bid : bids) h.bids->Push(bid);
    h.bids->Close(n + 1);
    engine.WaitUntilFinished();
    real = h.results->count();
  }
  ASSERT_GT(real, 0);

  // Virtual replay with the measured selectivity.
  QueryGraph graph;
  nexmark::QueryHandle h = nexmark::BuildFilterQuery(&graph, cfg, {});
  for (Node* node : graph.nodes()) {
    if (node == h.bids) continue;
    node->SetCostMicros(node->name() == "q2_filter" ? 2.0 : 0.5);
    node->SetSelectivity(node->name() == "q2_filter" ? selectivity : 1.0);
  }
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedules = {
      {h.bids, {{n, 50'000.0}}}};
  for (auto make : {MakeGtsConfig, MakeOtsConfig}) {
    auto result = Simulate(graph, schedules, make(graph), SimOptions());
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->results, real);
  }
}

}  // namespace
}  // namespace flexstream

// Chaos tier: the differential harness run under deterministic fault
// injection (testing/chaos.h). Every architecture x strategy must absorb
// transient operator failures (via retry), injected delays, and lost queue
// wakeups with zero result deviation; bounded-queue configurations may
// deviate only by what their drop counters declare; a permanent operator
// failure must surface as a non-OK RunResult() naming the operator while
// the engine winds down cleanly.
//
// Runs under the `check-chaos` CMake target (ctest -R "Chaos").

#include <chrono>
#include <string>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "testing/chaos.h"
#include "testing/differential.h"

namespace flexstream {
namespace {

DiffSpec ChaosSpec() {
  DiffSpec spec;
  spec.seed = 101;
  spec.node_count = 12;
  spec.feed_count = 300;
  return spec;
}

// The full sweep: golden (queue-free, chaos-free) vs every chaos
// configuration. Also asserts the sweep injected real faults — a chaos
// run that injected nothing proves nothing.
TEST(ChaosSweepTest, MatrixMatchesGoldenUnderChaos) {
  const DiffSpec spec = ChaosSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  int64_t total_retries = 0;
  for (const DiffConfig& config : ChaosConfigMatrix()) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    // No deadlocks: the HMTS watchdog (armed for every kHmts config) must
    // stay silent — lost wakeups are recovered by the idle-poll failsafe
    // well inside one watchdog interval.
    EXPECT_EQ(out.watchdog_stalls, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
    if (config.queue_max_elements == 0 ||
        config.overload_policy == OverloadPolicy::kBlock) {
      // Unbounded and kBlock runs never shed, so the compare above was
      // exact, not merely sub-multiset.
      EXPECT_EQ(out.dropped, 0);
    }
    total_retries += out.fault_retries;
  }
  EXPECT_GT(total_retries, 0)
      << "the sweep absorbed no transient faults - chaos was a no-op";
}

// Replay files must round-trip the robustness dimensions so a failing
// chaos scenario can be re-run exactly.
TEST(ChaosReplayTest, RoundTripsChaosFields) {
  const DiffSpec spec = ChaosSpec();
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.strategy = StrategyKind::kChain;
  config.queue_max_elements = 8;
  config.overload_policy = OverloadPolicy::kShedOldest;
  config.chaos_transient_rate = 0.02;
  config.chaos_delay_rate = 0.01;
  config.chaos_suppress_every_n = 7;
  config.chaos_seed = 99;
  config.watchdog = true;

  DiffSpec parsed_spec;
  DiffConfig parsed;
  std::string error;
  ASSERT_TRUE(
      ParseReplay(FormatReplay(spec, config), &parsed_spec, &parsed, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_EQ(parsed.queue_max_elements, config.queue_max_elements);
  EXPECT_EQ(parsed.overload_policy, config.overload_policy);
  EXPECT_DOUBLE_EQ(parsed.chaos_transient_rate, config.chaos_transient_rate);
  EXPECT_DOUBLE_EQ(parsed.chaos_delay_rate, config.chaos_delay_rate);
  EXPECT_EQ(parsed.chaos_suppress_every_n, config.chaos_suppress_every_n);
  EXPECT_EQ(parsed.chaos_seed, config.chaos_seed);
  EXPECT_EQ(parsed.watchdog, config.watchdog);
  EXPECT_EQ(parsed.Name(), config.Name());
}

// A targeted permanent failure mid-pipeline: the run must end (not hang),
// RunResult() must name the poisoned operator, and the engine must stop
// cleanly so destruction leaks no threads.
void RunPermanentFailure(ExecutionMode mode) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  MapOp* stage1 = qb.Map(src, "stage1", [](const Tuple& t) { return t; });
  MapOp* stage2 = qb.Map(stage1, "stage2", [](const Tuple& t) { return t; });
  CollectingSink* sink = qb.CollectSink(stage2, "sink");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = mode;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.permanent_fail_operator = "stage2";
  chaos_options.permanent_after = 5;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(&graph, engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 100; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(100);

  // The wait must end by failure, not by timeout.
  ASSERT_TRUE(engine.WaitUntilFinishedFor(std::chrono::seconds(30)));
  const Status result = engine.RunResult();
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.message().find("stage2"), std::string::npos)
      << result.message();
  EXPECT_EQ(chaos.permanent_injections(), 1);
  // The poison struck on the 6th delivery, so the sink saw at most 5.
  EXPECT_LE(sink->size(), 5u);
  engine.Stop();
  chaos.Disarm();
}

TEST(ChaosFailureTest, PermanentFailureSurfacesUnderHmts) {
  RunPermanentFailure(ExecutionMode::kHmts);
}

TEST(ChaosFailureTest, PermanentFailureSurfacesUnderGts) {
  RunPermanentFailure(ExecutionMode::kGts);
}

// A failure must also unwedge kBlock producers: the feeder keeps pushing
// into a bounded queue whose downstream is poisoned; AbortOnFailure's
// CancelProducerWaits must let the feed finish promptly.
TEST(ChaosFailureTest, FailureCancelsBlockedProducers) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  MapOp* stage = qb.Map(src, "stage", [](const Tuple& t) { return t; });
  stage->SetSimulatedCostMicros(50.0);
  qb.CollectSink(stage, "sink");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.queue_max_elements = 4;
  options.overload_policy = OverloadPolicy::kBlock;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.permanent_fail_operator = "stage";
  chaos_options.permanent_after = 2;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(&graph, engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  // Far more elements than the bound: without failure-aware waits the
  // feeder would park repeatedly behind a consumer that stopped draining.
  for (int i = 0; i < 500; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(500);

  ASSERT_TRUE(engine.WaitUntilFinishedFor(std::chrono::seconds(30)));
  EXPECT_FALSE(engine.RunResult().ok());
  engine.Stop();
  chaos.Disarm();
}

}  // namespace
}  // namespace flexstream

// Shared fixtures and helpers for flexstream tests.
//
// Promoted out of individual test files so the execution-facing tests
// (engine, queue, random-pipeline, differential harness) agree on one
// definition of "sorted results", one source->queue->sink rig, and one
// small reference pipeline.

#ifndef FLEXSTREAM_TESTS_HARNESS_TEST_UTIL_H_
#define FLEXSTREAM_TESTS_HARNESS_TEST_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "api/query_builder.h"
#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "util/random.h"

namespace flexstream {
namespace testutil {

/// Sorted copy (Tuple::operator<): the schedule-independent multiset view
/// of a sink's output.
std::vector<Tuple> Sorted(std::vector<Tuple> tuples);

/// src -> queue -> collecting sink, drained manually. The default ring
/// capacity keeps the queue in its production configuration; pass a tiny
/// capacity to exercise ring-full spillover.
struct QueueRig {
  QueryGraph graph;
  Source* src;
  QueueOp* queue;
  CollectingSink* sink;

  explicit QueueRig(size_t ring_capacity = QueueOp::kDefaultRingCapacity);
};

/// src -> sel(keep < 700) -> map(*2) -> sink over uniform ints in
/// [0, 1000): a small but non-trivial pipeline whose expected result count
/// is tracked while feeding (values are random, so the number passing the
/// filter is a property of the seed).
struct LinearPipelineFixture {
  QueryGraph graph;
  QueryBuilder qb{&graph};
  Source* src;
  CollectingSink* sink;
  size_t expected_results = 0;

  LinearPipelineFixture();

  /// Pushes elements [begin, end) with values from `rng`, updating
  /// expected_results.
  void PushRandom(Rng* rng, int begin, int end);

  /// Pushes 1000 elements from a fixed seed, then closes the source.
  void Feed();
};

}  // namespace testutil
}  // namespace flexstream

#endif  // FLEXSTREAM_TESTS_HARNESS_TEST_UTIL_H_

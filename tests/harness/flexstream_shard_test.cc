// Sharding tier: the differential harness with the spec's graph rewritten
// by ShardOperator (api/shard.h). The first Selection/Map is split into
// key-partitioned replicas behind a sequencing Router and re-merged; with
// the ordered merge the exact-sequence oracle stays armed, so the sweep
// proves the split/merge rewrite is output-invisible across GTS/OTS/HMTS
// and batch sizes. Arrival-order variants demote to the multiset oracle,
// and one configuration kills a replica mid-run with checkpointing armed
// (epoch rewind + replay must still match golden exactly).
//
// Runs under the `check-shard` CMake target (ctest -R "Shard|...").

#include <string>

#include <gtest/gtest.h>

#include "testing/differential.h"

namespace flexstream {
namespace {

DiffSpec ShardSpec() {
  DiffSpec spec;
  spec.seed = 303;
  spec.node_count = 12;
  spec.feed_count = 400;
  return spec;
}

TEST(ShardSweepTest, ShardMatrixMatchesGolden) {
  const DiffSpec spec = ShardSpec();
  const SinkOutputs golden = RunUnderConfig(spec, GoldenConfig());

  for (const DiffConfig& config : ShardConfigMatrix()) {
    SCOPED_TRACE(config.Name());
    const SinkOutputs out = RunUnderConfig(spec, config);
    ASSERT_TRUE(out.completed);
    EXPECT_TRUE(out.run_result.ok()) << out.run_result.message();
    if (config.kill_shard_replica >= 0) {
      // The replica kill actually happened and was absorbed by epoch
      // rewind + replay (a sweep that never killed proves nothing).
      EXPECT_GE(out.recoveries, 1);
      EXPECT_GT(out.replayed_elements, 0);
    }
    EXPECT_EQ(out.dropped, 0);
    const std::string diff = CompareOutputs(golden, out);
    EXPECT_TRUE(diff.empty()) << diff;
  }
}

// Replay files round-trip the sharding dimensions so a failing sharded
// scenario can be re-run exactly.
TEST(ShardReplayTest, RoundTripsShardFields) {
  const DiffSpec spec = ShardSpec();
  DiffConfig config;
  config.mode = ExecutionMode::kHmts;
  config.checkpoint_epoch_interval = 50;
  config.shard_count = 4;
  config.shard_unordered = true;
  config.kill_shard_replica = 2;
  config.chaos_kill_after = 40;

  DiffSpec parsed_spec;
  DiffConfig parsed;
  std::string error;
  ASSERT_TRUE(
      ParseReplay(FormatReplay(spec, config), &parsed_spec, &parsed, &error))
      << error;
  EXPECT_EQ(parsed_spec.seed, spec.seed);
  EXPECT_EQ(parsed.shard_count, config.shard_count);
  EXPECT_EQ(parsed.shard_unordered, config.shard_unordered);
  EXPECT_EQ(parsed.kill_shard_replica, config.kill_shard_replica);
  EXPECT_EQ(parsed.Name(), config.Name());
}

}  // namespace
}  // namespace flexstream

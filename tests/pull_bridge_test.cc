// Pull↔push bridging (PullVoOperator) and the multi-input pull operators
// (OncUnion, OncMap).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "pull/onc_operator.h"
#include "pull/pull_bridge.h"
#include "pull/pull_vo.h"

namespace flexstream {
namespace {

TEST(OncMapTest, TransformsAndPropagatesEnd) {
  OncVectorSource src("v", {Tuple::OfInt(3, 1)});
  OncMap map("m", &src, [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) * 10, t.timestamp());
  });
  map.Open();
  PullResult r = map.Next();
  ASSERT_TRUE(r.is_data());
  EXPECT_EQ(r.tuple.IntAt(0), 30);
  EXPECT_TRUE(map.Next().is_end());
  EXPECT_FALSE(map.HasNext());
}

TEST(OncUnionTest, MergesAndEndsWhenAllEnd) {
  OncVectorSource a("a", {Tuple::OfInt(1, 1), Tuple::OfInt(2, 2)});
  OncVectorSource b("b", {Tuple::OfInt(10, 1)});
  OncUnion u("u", {&a, &b});
  u.Open();
  std::vector<int64_t> seen;
  while (true) {
    PullResult r = u.Next();
    if (r.is_end()) break;
    if (r.is_data()) seen.push_back(r.tuple.IntAt(0));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 10}));
  EXPECT_FALSE(u.HasNext());
}

TEST(OncUnionTest, PendingWhileAnyChildOpen) {
  OncBuffer open_buffer("open");
  OncVectorSource done("done", {});
  OncUnion u("u", {&open_buffer, &done});
  u.Open();
  EXPECT_TRUE(u.Next().is_pending());
  open_buffer.Push(Tuple::OfInt(7, 1));
  EXPECT_TRUE(u.Next().is_data());
  open_buffer.CloseInput();
  EXPECT_TRUE(u.Next().is_end());
}

TEST(PullVoOperatorTest, RunsAPullChainInsideAPushGraph) {
  // Push graph: src -> [pull VO: buffer -> select(even) -> map(*2)] -> sink.
  auto vo = std::make_unique<PullVo>("inner");
  OncBuffer* buffer = vo->Add<OncBuffer>("in");
  OncSelect* select = vo->Add<OncSelect>(
      "even", buffer, [](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
  OncMap* map = vo->Add<OncMap>("x2", select, [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) * 2, t.timestamp());
  });
  ASSERT_TRUE(vo->Link(buffer, select).ok());
  ASSERT_TRUE(vo->Link(select, map).ok());

  QueryGraph g;
  Source* src = g.Add<Source>("src");
  PullVoOperator* bridge = g.Add<PullVoOperator>(
      "bridge", std::move(vo), std::vector<OncBuffer*>{buffer});
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, bridge).ok());
  ASSERT_TRUE(g.Connect(bridge, sink).ok());

  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(10);
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].IntAt(0), 0);
  EXPECT_EQ(results[4].IntAt(0), 16);
  EXPECT_TRUE(sink->closed());
}

TEST(PullVoOperatorTest, EquivalentToPushPipeline) {
  auto even = [](const Tuple& t) { return t.IntAt(0) % 2 == 0; };
  auto small = [](const Tuple& t) { return t.IntAt(0) < 50; };

  // Push-native pipeline.
  QueryGraph push_graph;
  Source* push_src = push_graph.Add<Source>("src");
  Selection* s1 = push_graph.Add<Selection>("s1", even);
  Selection* s2 = push_graph.Add<Selection>("s2", small);
  CollectingSink* push_sink = push_graph.Add<CollectingSink>("sink");
  ASSERT_TRUE(push_graph.Connect(push_src, s1).ok());
  ASSERT_TRUE(push_graph.Connect(s1, s2).ok());
  ASSERT_TRUE(push_graph.Connect(s2, push_sink).ok());

  // Same logic bridged through a pull VO.
  auto vo = std::make_unique<PullVo>("inner");
  OncBuffer* buffer = vo->Add<OncBuffer>("in");
  OncSelect* p1 = vo->Add<OncSelect>("s1", buffer, even);
  OncSelect* p2 = vo->Add<OncSelect>("s2", p1, small);
  ASSERT_TRUE(vo->Link(buffer, p1).ok());
  ASSERT_TRUE(vo->Link(p1, p2).ok());
  QueryGraph pull_graph;
  Source* pull_src = pull_graph.Add<Source>("src");
  PullVoOperator* bridge = pull_graph.Add<PullVoOperator>(
      "bridge", std::move(vo), std::vector<OncBuffer*>{buffer});
  CollectingSink* pull_sink = pull_graph.Add<CollectingSink>("sink");
  ASSERT_TRUE(pull_graph.Connect(pull_src, bridge).ok());
  ASSERT_TRUE(pull_graph.Connect(bridge, pull_sink).ok());

  for (int i = 0; i < 200; ++i) {
    push_src->Push(Tuple::OfInt(i % 100, i));
    pull_src->Push(Tuple::OfInt(i % 100, i));
  }
  push_src->Close(200);
  pull_src->Close(200);
  EXPECT_EQ(pull_sink->TakeResults(), push_sink->TakeResults());
  EXPECT_TRUE(pull_sink->closed());
}

TEST(PullVoOperatorTest, MultiInputUnionVo) {
  // Two push inputs merged by a pull-based union inside the bridge.
  auto vo = std::make_unique<PullVo>("inner");
  OncBuffer* in0 = vo->Add<OncBuffer>("in0");
  OncBuffer* in1 = vo->Add<OncBuffer>("in1");
  OncUnion* u = vo->Add<OncUnion>("u", std::vector<OncOperator*>{in0, in1});
  ASSERT_TRUE(vo->Link(in0, u).ok());
  ASSERT_TRUE(vo->Link(in1, u).ok());

  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  PullVoOperator* bridge = g.Add<PullVoOperator>(
      "bridge", std::move(vo), std::vector<OncBuffer*>{in0, in1});
  CountingSink* sink = g.Add<CountingSink>("sink");
  ASSERT_TRUE(g.Connect(a, bridge, 0).ok());
  ASSERT_TRUE(g.Connect(b, bridge, 1).ok());
  ASSERT_TRUE(g.Connect(bridge, sink).ok());
  for (int i = 0; i < 50; ++i) {
    a->Push(Tuple::OfInt(i, i));
    b->Push(Tuple::OfInt(100 + i, i));
  }
  a->Close(50);
  EXPECT_FALSE(sink->closed()) << "b still open";
  b->Close(50);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(sink->count(), 100);
}

}  // namespace
}  // namespace flexstream

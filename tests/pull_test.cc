// Pull-based ONC framework: repaired hasNext semantics, proxies, the
// tree-only restriction, and push/pull equivalence (Sections 2.2, 3.2,
// 3.4).

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/query_graph.h"
#include "operators/projection.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "pull/onc_operator.h"
#include "pull/proxy_queue.h"
#include "pull/pull_vo.h"

namespace flexstream {
namespace {

std::vector<Tuple> MakeStream(int n) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < n; ++i) tuples.push_back(Tuple::OfInt(i, i));
  return tuples;
}

TEST(OncVectorSourceTest, EmitsAllThenEnd) {
  OncVectorSource src("v", MakeStream(3));
  src.Open();
  for (int i = 0; i < 3; ++i) {
    PullResult r = src.Next();
    ASSERT_TRUE(r.is_data());
    EXPECT_EQ(r.tuple.IntAt(0), i);
  }
  EXPECT_TRUE(src.HasNext()) << "end not yet observed";
  EXPECT_TRUE(src.Next().is_end());
  EXPECT_FALSE(src.HasNext()) << "hasNext == false means ended forever";
}

TEST(OncBufferTest, PendingWhenEmptyEndWhenClosed) {
  OncBuffer buffer("b");
  buffer.Open();
  EXPECT_TRUE(buffer.Next().is_pending())
      << "empty but open input yields the special 'currently unavailable' "
         "element, not end";
  buffer.Push(Tuple::OfInt(1, 1));
  EXPECT_TRUE(buffer.Next().is_data());
  buffer.CloseInput();
  EXPECT_TRUE(buffer.Next().is_end());
  EXPECT_FALSE(buffer.HasNext());
}

TEST(OncBufferTest, DrainsBeforeEnd) {
  OncBuffer buffer("b");
  buffer.Push(Tuple::OfInt(1, 1));
  buffer.Push(Tuple::OfInt(2, 2));
  buffer.CloseInput();
  EXPECT_TRUE(buffer.Next().is_data());
  EXPECT_TRUE(buffer.Next().is_data());
  EXPECT_TRUE(buffer.Next().is_end());
}

TEST(OncSelectTest, FiltersAndReportsPendingForDiscarded) {
  OncVectorSource src("v", MakeStream(4));
  OncSelect select("f", &src,
                   [](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
  select.Open();
  EXPECT_TRUE(select.Next().is_data());     // 0 passes
  EXPECT_TRUE(select.Next().is_pending());  // 1 filtered -> pending
  EXPECT_TRUE(select.Next().is_data());     // 2 passes
  EXPECT_TRUE(select.Next().is_pending());  // 3 filtered
  EXPECT_TRUE(select.Next().is_end());
}

TEST(OncProjectTest, ProjectsAttributes) {
  OncVectorSource src("v", {Tuple({Value(1), Value(2)}, 5)});
  OncProject project("p", &src, {1});
  project.Open();
  PullResult r = project.Next();
  ASSERT_TRUE(r.is_data());
  EXPECT_EQ(r.tuple, Tuple({Value(2)}, 5));
}

TEST(ProxyQueueTest, ForwardsFromSourceWithoutStorage) {
  OncVectorSource src("v", MakeStream(2));
  src.Open();
  ProxyQueue proxy("proxy", &src);
  EXPECT_TRUE(proxy.Empty());
  EXPECT_TRUE(proxy.Dequeue().is_data());
  EXPECT_TRUE(proxy.Dequeue().is_data());
  EXPECT_TRUE(proxy.Dequeue().is_end());
}

TEST(PullVoTest, SchedulerOnlyCallsRoot) {
  // Figure 2's construction: sigma2 pulls sigma1 through a proxy; the
  // driver touches only the root.
  PullVo vo("vo");
  auto* src = vo.Add<OncVectorSource>("src", MakeStream(10));
  auto* s1 = vo.Add<OncSelect>(
      "s1", src, [](const Tuple& t) { return t.IntAt(0) >= 2; });
  auto* s2 = vo.Add<OncSelect>(
      "s2", s1, [](const Tuple& t) { return t.IntAt(0) < 8; });
  ASSERT_TRUE(vo.Link(src, s1).ok());
  ASSERT_TRUE(vo.Link(s1, s2).ok());
  auto root = vo.Root();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, s2);
  auto results = vo.DrainAll();
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results.front().IntAt(0), 2);
  EXPECT_EQ(results.back().IntAt(0), 7);
  EXPECT_GT(vo.last_pending_count(), 0)
      << "filtered elements surface as pending root invocations";
}

TEST(PullVoTest, SharedSubqueryIsRejected) {
  // Section 3.4: "pull-based processing can not support subquery sharing
  // within a VO."
  PullVo vo("vo");
  auto* src = vo.Add<OncVectorSource>("src", MakeStream(5));
  auto* p1 = vo.Add<OncProject>("p1", src, std::vector<size_t>{});
  auto* p2 = vo.Add<OncProject>("p2", src, std::vector<size_t>{});
  ASSERT_TRUE(vo.Link(src, p1).ok());
  const Status s = vo.Link(src, p2).ok()
                       ? Status::Ok()
                       : Status::FailedPrecondition("rejected");
  EXPECT_FALSE(s.ok()) << "sharing a child between two parents must fail";
}

TEST(PullVoTest, MultipleRootsDetected) {
  PullVo vo("vo");
  vo.Add<OncVectorSource>("a", MakeStream(1));
  vo.Add<OncVectorSource>("b", MakeStream(1));
  EXPECT_FALSE(vo.Root().ok());
}

TEST(PushPullEquivalenceTest, SameSelectionChainSameResults) {
  // The same two-selection VO built push-based (DI) and pull-based
  // (proxies) produces identical results — queues and paradigm choice
  // never change semantics (Section 2.4).
  const auto stream = MakeStream(100);
  auto even = [](const Tuple& t) { return t.IntAt(0) % 2 == 0; };
  auto small = [](const Tuple& t) { return t.IntAt(0) < 50; };

  // Push.
  QueryGraph g;
  VectorSource* push_src = g.Add<VectorSource>("src", stream);
  Selection* push_s1 = g.Add<Selection>("s1", even);
  Selection* push_s2 = g.Add<Selection>("s2", small);
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(push_src, push_s1).ok());
  ASSERT_TRUE(g.Connect(push_s1, push_s2).ok());
  ASSERT_TRUE(g.Connect(push_s2, sink).ok());
  push_src->PushAll();

  // Pull.
  PullVo vo("vo");
  auto* pull_src = vo.Add<OncVectorSource>("src", stream);
  auto* pull_s1 = vo.Add<OncSelect>("s1", pull_src, even);
  auto* pull_s2 = vo.Add<OncSelect>("s2", pull_s1, small);
  ASSERT_TRUE(vo.Link(pull_src, pull_s1).ok());
  ASSERT_TRUE(vo.Link(pull_s1, pull_s2).ok());

  EXPECT_EQ(vo.DrainAll(), sink->TakeResults());
}

TEST(PushPullEquivalenceTest, PushSupportsSharingPullDoesNot) {
  // Push-based: one source feeding two selections works naturally.
  QueryGraph g;
  VectorSource* src = g.Add<VectorSource>("src", MakeStream(10));
  Selection* s1 = g.Add<Selection>(
      "s1", [](const Tuple& t) { return t.IntAt(0) < 5; });
  Selection* s2 = g.Add<Selection>(
      "s2", [](const Tuple& t) { return t.IntAt(0) >= 5; });
  CollectingSink* sink1 = g.Add<CollectingSink>("sink1");
  CollectingSink* sink2 = g.Add<CollectingSink>("sink2");
  ASSERT_TRUE(g.Connect(src, s1).ok());
  ASSERT_TRUE(g.Connect(src, s2).ok());
  ASSERT_TRUE(g.Connect(s1, sink1).ok());
  ASSERT_TRUE(g.Connect(s2, sink2).ok());
  src->PushAll();
  EXPECT_EQ(sink1->size(), 5u);
  EXPECT_EQ(sink2->size(), 5u);
  // The pull analogue was shown to be rejected in SharedSubqueryIsRejected.
}

}  // namespace
}  // namespace flexstream

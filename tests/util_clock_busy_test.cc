#include <gtest/gtest.h>

#include "util/busy_work.h"
#include "util/clock.h"

namespace flexstream {
namespace {

TEST(ClockTest, DurationConversions) {
  const Duration d = FromMicros(1'500'000);
  EXPECT_NEAR(ToSeconds(d), 1.5, 1e-9);
  EXPECT_NEAR(ToMillis(d), 1500.0, 1e-6);
  EXPECT_EQ(ToMicros(d), 1'500'000);
}

TEST(ClockTest, FromSecondsD) {
  EXPECT_EQ(ToMicros(FromSecondsD(0.25)), 250'000);
}

TEST(ClockTest, StopwatchAdvances) {
  Stopwatch sw;
  SleepUntil(Now() + std::chrono::milliseconds(5));
  EXPECT_GE(sw.ElapsedMillis(), 4.5);
  sw.Restart();
  EXPECT_LT(sw.ElapsedMillis(), 4.0);
}

TEST(ClockTest, SleepUntilPastDeadlineReturnsImmediately) {
  Stopwatch sw;
  SleepUntil(Now() - std::chrono::seconds(1));
  EXPECT_LT(sw.ElapsedMillis(), 5.0);
}

TEST(BusyWorkTest, CalibrationIsPositive) {
  EXPECT_GT(IterationsPerMicro(), 0.0);
}

TEST(BusyWorkTest, BurnMicrosTakesRoughlyThatLong) {
  BurnMicros(100.0);  // warm up calibration
  Stopwatch sw;
  BurnMicros(20'000.0);
  const double elapsed = sw.ElapsedMicros();
  // Generous bounds: CI containers have noisy clocks and schedulers.
  EXPECT_GE(elapsed, 10'000.0);
  EXPECT_LE(elapsed, 200'000.0);
}

TEST(BusyWorkTest, BurnZeroIsInstant) {
  Stopwatch sw;
  BurnMicros(0.0);
  BurnMicros(-5.0);
  EXPECT_LT(sw.ElapsedMillis(), 5.0);
}

TEST(BusyWorkTest, BurnUntilReachesDeadline) {
  const TimePoint deadline = Now() + std::chrono::milliseconds(10);
  BurnUntil(deadline);
  EXPECT_GE(Now(), deadline);
}

TEST(AppTimeTest, Constants) {
  EXPECT_EQ(kMicrosPerSecond, 1'000'000);
  EXPECT_EQ(kMicrosPerMinute, 60'000'000);
}

}  // namespace
}  // namespace flexstream

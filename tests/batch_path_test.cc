// Batch execution path (DESIGN.md §11): TupleBatch semantics, source-side
// accumulation, batch-native operator overrides, the per-tuple fallback,
// move behaviour of owned payloads, queue batch delivery ordering across
// all three internal paths, and epoch alignment with batching enabled.

#include "tuple/tuple_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/map_op.h"
#include "operators/projection.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "queue/queue_op.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

// -- TupleBatch container semantics -----------------------------------------

TEST(TupleBatchTest, PushBackAndIterateInOrder) {
  TupleBatch batch;
  for (int i = 0; i < 5; ++i) batch.PushBack(Tuple::OfInt(i, i));
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_FALSE(batch.empty());
  int expected = 0;
  for (const Tuple& tuple : batch) EXPECT_EQ(tuple.IntAt(0), expected++);
  batch.clear();
  EXPECT_TRUE(batch.empty());
}

TEST(TupleBatchTest, CompactFiltersInPlacePreservingOrder) {
  TupleBatch batch;
  for (int i = 0; i < 10; ++i) batch.PushBack(Tuple::OfInt(i, i));
  batch.Compact([](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
  ASSERT_EQ(batch.size(), 5u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].IntAt(0), static_cast<int64_t>(2 * i));
  }
  batch.Compact([](const Tuple&) { return false; });
  EXPECT_TRUE(batch.empty());
}

TEST(TupleBatchTest, TakeTuplesHandsBackTheVector) {
  TupleBatch batch;
  batch.PushBack(Tuple::OfInt(7, 1));
  batch.PushBack(Tuple::OfInt(8, 2));
  std::vector<Tuple> taken = batch.TakeTuples();
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].IntAt(0), 7);
  EXPECT_EQ(taken[1].IntAt(0), 8);
}

// -- Source-side accumulation -----------------------------------------------

/// Pass-through operator recording how deliveries arrive: one entry per
/// ReceiveBatch (the batch size) and a count of per-tuple deliveries.
class RecordingOp : public Operator {
 public:
  explicit RecordingOp(std::string name)
      : Operator(Kind::kOperator, std::move(name), 1) {}

  std::vector<size_t> batch_sizes;
  int64_t singles = 0;

 protected:
  void Process(const Tuple& tuple, int) override {
    ++singles;
    Emit(tuple);
  }
  void ProcessBatch(TupleBatch&& batch, int) override {
    batch_sizes.push_back(batch.size());
    EmitBatch(std::move(batch));
  }
};

TEST(BatchPathTest, SourceAccumulatesAndFlushesRemainderOnClose) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  RecordingOp* rec = g.Add<RecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  src->SetEmitBatchSize(4);
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(sink->size(), 8u) << "two full batches emitted, 2 pending";
  src->Close(10);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(rec->batch_sizes, (std::vector<size_t>{4, 4, 2}))
      << "close flushes the partial batch before EOS";
  EXPECT_EQ(rec->singles, 0);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

TEST(BatchPathTest, BatchSizeOneKeepsPerTuplePath) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  RecordingOp* rec = g.Add<RecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  for (int i = 0; i < 5; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(5);
  EXPECT_TRUE(rec->batch_sizes.empty());
  EXPECT_EQ(rec->singles, 5);
  EXPECT_EQ(sink->size(), 5u);
}

// -- Batch-native operators match per-tuple execution -----------------------

/// src -> sel(odd) -> proj(keep 0) -> map(x+1) -> sink with the given
/// delivery granularity; returns the sink's output sequence.
std::vector<Tuple> RunChain(size_t emit_batch_size, int feed) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>(
      "sel", [](const Tuple& t) { return t.IntAt(0) % 2 == 1; });
  Projection* proj = g.Add<Projection>("proj", std::vector<size_t>{0});
  MapOp* map = g.Add<MapOp>("map", [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) + 1, t.timestamp());
  });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  EXPECT_TRUE(g.Connect(src, sel).ok());
  EXPECT_TRUE(g.Connect(sel, proj).ok());
  EXPECT_TRUE(g.Connect(proj, map).ok());
  EXPECT_TRUE(g.Connect(map, sink).ok());
  src->SetEmitBatchSize(emit_batch_size);
  for (int i = 0; i < feed; ++i) {
    src->Push(Tuple({Value(int64_t{i}), Value(double(i) / 2)}, i));
  }
  src->Close(feed);
  EXPECT_TRUE(sink->closed());
  return sink->TakeResults();
}

TEST(BatchPathTest, SelectionProjectionMapChainMatchesPerTuple) {
  const std::vector<Tuple> per_tuple = RunChain(1, 100);
  ASSERT_EQ(per_tuple.size(), 50u);
  for (size_t batch : {size_t{4}, size_t{64}, size_t{1000}}) {
    EXPECT_EQ(RunChain(batch, 100), per_tuple)
        << "batch size " << batch << " changed the output";
  }
}

TEST(BatchPathTest, ProjectionDuplicateAttrsAreCopiedNotDoubleMoved) {
  // A repeated attribute index must not read a moved-from Value on the
  // batch path.
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Projection* proj = g.Add<Projection>("dup", std::vector<size_t>{0, 0});
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, proj).ok());
  ASSERT_TRUE(g.Connect(proj, sink).ok());
  src->SetEmitBatchSize(8);
  const std::string payload(80, 'x');
  for (int i = 0; i < 8; ++i) {
    src->Push(Tuple({Value(payload + std::to_string(i))}, i));
  }
  src->Close(8);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(results[i].arity(), 2u);
    EXPECT_EQ(results[i].StringAt(0), payload + std::to_string(i));
    EXPECT_EQ(results[i].StringAt(1), payload + std::to_string(i));
  }
}

TEST(BatchPathTest, UnionForwardsBatchesFromBothInputs) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  RecordingOp* rec = g.Add<RecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  ASSERT_TRUE(g.Connect(u, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  a->SetEmitBatchSize(3);
  b->SetEmitBatchSize(3);
  for (int i = 0; i < 3; ++i) a->Push(Tuple::OfInt(i, i));
  for (int i = 10; i < 13; ++i) b->Push(Tuple::OfInt(i, i));
  a->Close(3);
  b->Close(13);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(rec->batch_sizes, (std::vector<size_t>{3, 3}))
      << "union passes each input's batch through intact";
  EXPECT_EQ(sink->size(), 6u);
}

TEST(BatchPathTest, CountingSinkAbsorbsWholeBatches) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CountingSink* sink = g.Add<CountingSink>("count");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->SetEmitBatchSize(16);
  for (int i = 0; i < 100; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(100);
  EXPECT_EQ(sink->count(), 100);
}

TEST(BatchPathTest, NonBatchOperatorDissolvesBatchToPerTuple) {
  // RecordingOp's base sibling: an operator relying on the default
  // ProcessBatch, which must fall back to N Process calls in order.
  class PerTupleOnlyOp : public Operator {
   public:
    explicit PerTupleOnlyOp(std::string name)
        : Operator(Kind::kOperator, std::move(name), 1) {}
    int64_t processed = 0;

   protected:
    void Process(const Tuple& tuple, int) override {
      ++processed;
      Emit(tuple);
    }
  };

  QueryGraph g;
  Source* src = g.Add<Source>("s");
  PerTupleOnlyOp* op = g.Add<PerTupleOnlyOp>("legacy");
  RecordingOp* rec = g.Add<RecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, op).ok());
  ASSERT_TRUE(g.Connect(op, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  src->SetEmitBatchSize(8);
  for (int i = 0; i < 20; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(20);
  EXPECT_EQ(op->processed, 20);
  EXPECT_EQ(rec->batch_sizes, std::vector<size_t>{})
      << "batches dissolve at a per-tuple operator";
  EXPECT_EQ(rec->singles, 20);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

// -- Move behaviour (satellite: EmitMove audit) ------------------------------

TEST(BatchPathTest, StringPayloadsMoveThroughTheChainWithoutCopying) {
  // A heap-allocated string's buffer address survives every move; a copy
  // anywhere in source accumulation, selection compaction, projection
  // rebuild, or sink absorption would change it.
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel =
      g.Add<Selection>("keep", [](const Tuple&) { return true; });
  Projection* proj = g.Add<Projection>("p", std::vector<size_t>{0});
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Connect(sel, proj).ok());
  ASSERT_TRUE(g.Connect(proj, sink).ok());
  src->SetEmitBatchSize(4);

  std::vector<const char*> buffers;
  for (int i = 0; i < 8; ++i) {
    // Well past any SSO threshold, so the payload lives on the heap.
    std::vector<Value> values;
    values.emplace_back(std::string(96, static_cast<char>('a' + i)));
    Tuple tuple(std::move(values), i);
    buffers.push_back(tuple.StringAt(0).data());
    src->Push(std::move(tuple));
  }
  src->Close(8);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 8u);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(static_cast<const void*>(results[i].StringAt(0).data()),
              static_cast<const void*>(buffers[i]))
        << "payload " << i << " was copied somewhere in the chain";
  }
}

// -- Queue batch delivery ----------------------------------------------------

/// Feeds `feed` elements from a producer thread through a queue drained by
/// this thread, asserting exact FIFO order at the sink. Covers the three
/// internal queue paths x both delivery granularities.
void RunQueueOrdering(bool single_producer, size_t ring_capacity,
                      bool batch_delivery) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  QueueOp* q = g.Add<QueueOp>("q", ring_capacity);
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(single_producer);
  q->SetBatchDelivery(batch_delivery);

  constexpr int kFeed = 2000;
  std::thread producer([&] {
    for (int i = 0; i < kFeed; ++i) src->Push(Tuple::OfInt(i, i));
    src->Close(kFeed);
  });
  while (!q->Exhausted()) q->DrainBatch(32);
  producer.join();

  EXPECT_TRUE(sink->closed());
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kFeed));
  for (int i = 0; i < kFeed; ++i) {
    ASSERT_EQ(results[i].IntAt(0), i) << "order broken at index " << i;
  }
}

TEST(QueueBatchDeliveryTest, SpscRingOrderPerTuple) {
  RunQueueOrdering(true, QueueOp::kDefaultRingCapacity, false);
}
TEST(QueueBatchDeliveryTest, SpscRingOrderBatched) {
  RunQueueOrdering(true, QueueOp::kDefaultRingCapacity, true);
}
TEST(QueueBatchDeliveryTest, MpscOrderPerTuple) {
  RunQueueOrdering(false, QueueOp::kDefaultRingCapacity, false);
}
TEST(QueueBatchDeliveryTest, MpscOrderBatched) {
  RunQueueOrdering(false, QueueOp::kDefaultRingCapacity, true);
}
TEST(QueueBatchDeliveryTest, SpilloverOrderPerTuple) {
  // Ring capacity 2: nearly every enqueue overflows into the spillover
  // deque, so drains run the seq-merge path.
  RunQueueOrdering(true, 2, false);
}
TEST(QueueBatchDeliveryTest, SpilloverOrderBatched) {
  RunQueueOrdering(true, 2, true);
}

TEST(QueueBatchDeliveryTest, DrainDeliversRunsAsSingleBatches) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  QueueOp* q = g.Add<QueueOp>("q");
  RecordingOp* rec = g.Add<RecordingOp>("rec");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, rec).ok());
  ASSERT_TRUE(g.Connect(rec, sink).ok());
  q->SetBatchDelivery(true);

  for (int i = 0; i < 3; ++i) src->Push(Tuple::OfInt(i, i));
  q->DrainBatch(100);
  for (int i = 3; i < 8; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(8);
  q->DrainBatch(100);

  EXPECT_TRUE(sink->closed()) << "EOS still travels per-tuple after a batch";
  EXPECT_EQ(rec->batch_sizes, (std::vector<size_t>{3, 5}));
  EXPECT_EQ(rec->singles, 0);
  const std::vector<Tuple> results = sink->TakeResults();
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

// -- Engine integration ------------------------------------------------------

struct EnginePipeline {
  QueryGraph graph;
  Source* src = nullptr;
  CollectingSink* sink = nullptr;
};

void BuildEnginePipeline(EnginePipeline* p) {
  QueryBuilder qb(&p->graph);
  p->src = qb.AddSource("src");
  Selection* sel =
      qb.Select(p->src, "sel", [](const Tuple& t) { return t.IntAt(0) % 3; });
  p->sink = qb.CollectSink(sel, "sink");
}

std::vector<Tuple> RunEngine(const EngineOptions& options, int feed) {
  EnginePipeline p;
  BuildEnginePipeline(&p);
  StreamEngine engine(&p.graph);
  EXPECT_TRUE(engine.Configure(options).ok());
  EXPECT_TRUE(engine.Start().ok());
  for (int i = 0; i < feed; ++i) p.src->Push(Tuple::OfInt(i, i));
  p.src->Close(feed);
  EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  engine.Stop();
  std::vector<Tuple> results = p.sink->TakeResults();
  std::sort(results.begin(), results.end());
  return results;
}

TEST(EngineBatchTest, BatchedRunMatchesPerTupleAcrossModes) {
  const int kFeed = 500;
  EngineOptions base;
  base.mode = ExecutionMode::kGts;
  const std::vector<Tuple> golden = RunEngine(base, kFeed);
  for (ExecutionMode mode :
       {ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    EngineOptions options;
    options.mode = mode;
    options.emit_batch_size = 64;
    EXPECT_EQ(RunEngine(options, kFeed), golden)
        << "batched " << ExecutionModeToString(mode) << " diverged";
  }
}

TEST(EngineBatchTest, EpochAlignmentHoldsWithBatchingEnabled) {
  // Barriers must split batches: checkpointing + batching together still
  // commit epochs and produce exactly the per-tuple result.
  const int kFeed = 400;
  EngineOptions base;
  base.mode = ExecutionMode::kGts;
  const std::vector<Tuple> golden = RunEngine(base, kFeed);

  EnginePipeline p;
  BuildEnginePipeline(&p);
  StreamEngine engine(&p.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  options.emit_batch_size = 64;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < kFeed; ++i) p.src->Push(Tuple::OfInt(i, i));
  p.src->Close(kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_GT(engine.recovery()->coordinator().epochs_committed(), 0)
      << "epochs must still commit with batch delivery enabled";
  engine.Stop();

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);
}

}  // namespace
}  // namespace flexstream

#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace flexstream {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextU64(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u) << "all values of a small range must appear";
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.5);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(29);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, ZipfRangeAndSkew) {
  Rng rng(31);
  int64_t ones = 0;
  int64_t tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.Zipf(100, 1.0);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    if (v == 1) ++ones;
    if (v > 50) ++tail;
  }
  EXPECT_GT(ones, tail) << "Zipf must favor small ranks";
}

TEST(RngTest, ZipfHandlesParameterChange) {
  Rng rng(37);
  EXPECT_LE(rng.Zipf(10, 1.0), 10);
  EXPECT_LE(rng.Zipf(5, 2.0), 5);
  EXPECT_LE(rng.Zipf(10, 1.0), 10);
}

}  // namespace
}  // namespace flexstream

// Closed-loop SLO control (src/control/, DESIGN.md §15): the degradation
// ladder's escalation order, the hysteresis machinery that makes it
// provably non-oscillating (EWMA smoothing, action-free band, calm
// streaks, minimum dwell), recovery suspension, lever retirement on
// structural refusals, exact shed accounting, the decision log and its
// table rendering, the engine's live actuation hooks, the structured
// SwitchTo/ResizeShard refusals, and the state-carrying live reshard.
//
// All ladder-property tests drive control intervals through a
// VirtualControlClock — no sleeps, fully deterministic.
//
// Runs under the `check-control` CMake target
// (ctest -R "SloController|ControlLadder|ControlTable|ControlReshard|EngineActuation|SwitchToRefusal|ResizeShardRefusal|ControlSim").

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/shard.h"
#include "api/stream_engine.h"
#include "control/control_clock.h"
#include "control/engine_hooks.h"
#include "control/slo_controller.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "sim/simulator.h"
#include "stats/report.h"
#include "tuple/tuple.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

// ---------------------------------------------------------------------------
// Fakes for the virtual-time ladder tests.

class FakeProbe : public MetricsProbe {
 public:
  ControlMetrics next;
  int64_t samples = 0;

  ControlMetrics Sample() override {
    ++samples;
    return next;
  }
};

class FakeActuator : public Actuator {
 public:
  bool recovering_flag = false;
  Status threads_result = Status::Ok();
  Status batch_result = Status::Ok();
  Status shards_result = Status::Ok();
  Status shed_result = Status::Ok();
  std::vector<std::string> calls;

  bool recovering() const override { return recovering_flag; }
  Status SetMaxThreads(int n) override {
    calls.push_back("threads=" + std::to_string(n));
    return threads_result;
  }
  Status SetBatchSize(size_t n) override {
    calls.push_back("batch=" + std::to_string(n));
    return batch_result;
  }
  Status SetShards(size_t n) override {
    calls.push_back("shards=" + std::to_string(n));
    return shards_result;
  }
  Status SetShedding(bool on) override {
    calls.push_back(on ? "shed=on" : "shed=off");
    return shed_result;
  }

  int CallsWithPrefix(const std::string& prefix) const {
    int n = 0;
    for (const std::string& call : calls) {
      if (call.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }
};

/// Options tuned so every ladder transition is reachable in a handful of
/// virtual ticks: alpha 1 (no smoothing lag), SLO 1000us, band floor
/// 500us, two calm intervals + 1s dwell to step down, heavy rungs after
/// three consecutive breach intervals.
SloOptions LadderOptions() {
  SloOptions o;
  o.target_p99_micros = 1000.0;
  o.control_interval = std::chrono::milliseconds(500);
  o.ewma_alpha = 1.0;
  o.deescalate_fraction = 0.5;
  o.deescalate_intervals = 2;
  o.min_dwell = std::chrono::seconds(1);
  o.base_threads = 1;
  o.max_threads = 4;
  o.base_batch_size = 1;
  o.max_batch_size = 16;
  o.base_shards = 2;
  o.max_shards = 4;
  o.allow_reshard = true;
  o.allow_shedding = true;
  o.heavy_rung_patience = 3;
  return o;
}

struct LadderRig {
  FakeProbe probe;
  FakeActuator actuator;
  VirtualControlClock clock;
  SloController controller;

  explicit LadderRig(const SloOptions& options)
      : controller(options, &probe, &actuator, &clock) {}

  ControlDecision Tick() {
    clock.Advance(controller.options().control_interval);
    return controller.TickOnce();
  }
};

// ---------------------------------------------------------------------------
// Escalation.

TEST(SloControllerTest, EscalatesThroughLadderInOrder) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;  // 4x the SLO, persistent

  for (int i = 0; i < 7; ++i) rig.Tick();

  // threads double to the cap, then batch x4 to the cap, then (after
  // three consecutive breach intervals) reshard, then shedding — last.
  EXPECT_EQ(rig.actuator.calls,
            (std::vector<std::string>{"threads=2", "threads=4", "batch=4",
                                      "batch=16", "shards=4", "shed=on"}));
  EXPECT_EQ(rig.controller.current_rung(), 4);
  EXPECT_EQ(rig.controller.actions_taken(), 6);

  // Saturated ladder: further breach intervals change nothing.
  rig.Tick();
  rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), 6);
}

TEST(SloControllerTest, HeavyRungsWaitForPersistentOverload) {
  SloOptions o = LadderOptions();
  o.base_threads = o.max_threads;        // rung 1 exhausted from the start
  o.base_batch_size = o.max_batch_size;  // rung 2 exhausted from the start
  LadderRig rig(o);
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;

  // Two breach intervals: nothing actuated yet — a transient spike must
  // never reshard or shed.
  rig.Tick();
  ControlDecision d = rig.Tick();
  EXPECT_TRUE(rig.actuator.calls.empty());
  EXPECT_NE(d.action.find("await persistence"), std::string::npos);
  // The third consecutive breach unlocks the heavy rungs.
  rig.Tick();
  EXPECT_EQ(rig.actuator.calls,
            (std::vector<std::string>{"shards=4"}));
}

TEST(SloControllerTest, StalledPipelineCountsAsBreach) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 0;  // nothing completing...
  rig.probe.next.backlog = 5000;      // ...but work is piling up

  ControlDecision d = rig.Tick();
  EXPECT_NE(d.trigger.find("stalled"), std::string::npos);
  EXPECT_EQ(rig.actuator.calls,
            (std::vector<std::string>{"threads=2"}));
}

TEST(SloControllerTest, RefusedThreadLeverRetiresAndFallsThrough) {
  LadderRig rig(LadderOptions());
  rig.actuator.threads_result =
      Status::FailedPrecondition("execution mode is gts");
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;

  ControlDecision d = rig.Tick();
  // Same interval: refusal logged, next lever actuated.
  EXPECT_NE(d.action.find("threads refused"), std::string::npos);
  EXPECT_NE(d.action.find("batch 1->4"), std::string::npos);
  rig.Tick();
  rig.Tick();
  // The dead lever is never retried.
  EXPECT_EQ(rig.actuator.CallsWithPrefix("threads="), 1);
  EXPECT_GE(rig.actuator.CallsWithPrefix("batch="), 2);
}

// ---------------------------------------------------------------------------
// Hysteresis / no-oscillation.

TEST(SloControllerTest, ZeroActionsAfterConvergenceUnderSteadyLoad) {
  LadderRig rig(LadderOptions());
  // Breach until the first escalation "fixes" the latency into the band.
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.Tick();
  ASSERT_EQ(rig.controller.actions_taken(), 1);

  // Steady load inside the hysteresis band [500, 1000]: converged.
  rig.probe.next.interval_p99_micros = 800.0;
  for (int i = 0; i < 50; ++i) rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), 1) << "controller oscillated";
  EXPECT_EQ(rig.controller.current_rung(), 1);
}

TEST(SloControllerTest, SteadyCalmAtBaselineNeverActs) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 100.0;
  for (int i = 0; i < 50; ++i) rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), 0);
  EXPECT_EQ(rig.controller.current_rung(), 0);
}

TEST(ControlLadderTest, SquareWaveLoadBoundsTotalActions) {
  // 20 breach intervals, then 20 in-band intervals, five cycles. The
  // ladder escalates (at most its full height) during the first breach
  // phase and holds everywhere else — later breach phases find the levers
  // already engaged, and the in-band phases never de-escalate. Total
  // actions are bounded by the ladder height, not by the edge count.
  LadderRig rig(LadderOptions());
  for (int cycle = 0; cycle < 5; ++cycle) {
    rig.probe.next.interval_count = 100;
    rig.probe.next.interval_p99_micros = 4000.0;
    for (int i = 0; i < 20; ++i) rig.Tick();
    rig.probe.next.interval_p99_micros = 800.0;  // in band: no action
    for (int i = 0; i < 20; ++i) rig.Tick();
  }
  EXPECT_LE(rig.controller.actions_taken(), 6);
}

TEST(ControlLadderTest, EscalateThenDeescalateWalksReverseOrder) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  for (int i = 0; i < 7; ++i) rig.Tick();
  ASSERT_EQ(rig.controller.current_rung(), 4);
  const size_t up_actions = rig.actuator.calls.size();

  // Deep calm: one rung per calm window (2 intervals), reverse order,
  // completeness restored first.
  rig.probe.next.interval_p99_micros = 100.0;
  for (int i = 0; i < 30; ++i) rig.Tick();
  const std::vector<std::string> down(
      rig.actuator.calls.begin() + static_cast<long>(up_actions),
      rig.actuator.calls.end());
  EXPECT_EQ(down,
            (std::vector<std::string>{"shed=off", "shards=2", "batch=4",
                                      "batch=1", "threads=2", "threads=1"}));
  EXPECT_EQ(rig.controller.current_rung(), 0);

  // Fully de-escalated and still calm: the action stream stops.
  const int64_t settled = rig.controller.actions_taken();
  for (int i = 0; i < 20; ++i) rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), settled);
}

TEST(SloControllerTest, MinimumDwellDelaysDeescalation) {
  SloOptions o = LadderOptions();
  o.min_dwell = std::chrono::seconds(10);  // 20 control intervals
  LadderRig rig(o);
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.Tick();
  ASSERT_EQ(rig.controller.actions_taken(), 1);

  rig.probe.next.interval_p99_micros = 100.0;  // deep calm immediately
  bool saw_dwell_hold = false;
  for (int i = 0; i < 19; ++i) {
    ControlDecision d = rig.Tick();
    if (d.action.find("dwell") != std::string::npos) saw_dwell_hold = true;
  }
  // 19 intervals = 9.5s since the action: still inside the dwell.
  EXPECT_EQ(rig.controller.actions_taken(), 1);
  EXPECT_TRUE(saw_dwell_hold);
  // Two more intervals cross the 10s dwell; calm streak is long since met.
  rig.Tick();
  rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), 2);
  EXPECT_EQ(rig.actuator.calls.back(), "threads=1");
}

TEST(SloControllerTest, EwmaSmoothingAbsorbsOneNoisySpike) {
  SloOptions o = LadderOptions();
  o.ewma_alpha = 0.3;
  LadderRig rig(o);
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 600.0;
  for (int i = 0; i < 10; ++i) rig.Tick();  // smoothed settles at 600

  rig.probe.next.interval_p99_micros = 1800.0;  // one noisy interval
  rig.Tick();                                   // smoothed: 600+0.3*1200=960
  rig.probe.next.interval_p99_micros = 600.0;
  rig.Tick();
  EXPECT_EQ(rig.controller.actions_taken(), 0)
      << "a single spike below the smoothed threshold must not actuate";
}

// ---------------------------------------------------------------------------
// Recovery suspension, shed accounting, decision log.

TEST(SloControllerTest, SuspendsWhileRecoveryInFlight) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.actuator.recovering_flag = true;

  ControlDecision d = rig.Tick();
  EXPECT_EQ(d.action, "suspended");
  EXPECT_NE(d.trigger.find("recovery"), std::string::npos);
  EXPECT_EQ(rig.probe.samples, 0) << "no sampling during recovery";
  EXPECT_TRUE(rig.actuator.calls.empty());

  // Recovery ends: the controller resumes exactly where it left off.
  rig.actuator.recovering_flag = false;
  rig.Tick();
  EXPECT_EQ(rig.actuator.calls,
            (std::vector<std::string>{"threads=2"}));
}

TEST(SloControllerTest, AccountsShedElementsExactlyWhileDegraded) {
  SloOptions o = LadderOptions();
  o.base_threads = o.max_threads;
  o.base_batch_size = o.max_batch_size;
  o.allow_reshard = false;
  o.heavy_rung_patience = 1;
  LadderRig rig(o);
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.probe.next.dropped_delta = 3;  // drops before rung 4 are not "shed"
  rig.Tick();
  ASSERT_EQ(rig.actuator.calls,
            (std::vector<std::string>{"shed=on"}));
  EXPECT_EQ(rig.controller.shed_while_degraded(), 0);

  rig.probe.next.dropped_delta = 7;
  ControlDecision d = rig.Tick();
  EXPECT_EQ(d.dropped_delta, 7);
  rig.probe.next.dropped_delta = 5;
  rig.Tick();
  EXPECT_EQ(rig.controller.shed_while_degraded(), 12);
}

TEST(SloControllerTest, DecisionLogIsRingCapped) {
  SloOptions o = LadderOptions();
  o.decision_log_limit = 4;
  LadderRig rig(o);
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 100.0;
  for (int i = 0; i < 10; ++i) rig.Tick();
  const std::vector<ControlDecision> log = rig.controller.decisions();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.front().interval, 7);  // oldest entries dropped
  EXPECT_EQ(log.back().interval, 10);
}

TEST(SloControllerTest, DescribeStateSummarizesRungAndLevers) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.Tick();
  const std::string state = rig.controller.DescribeState();
  EXPECT_NE(state.find("slo-control: rung 1"), std::string::npos);
  EXPECT_NE(state.find("threads 2"), std::string::npos);
  EXPECT_NE(state.find("actions 1"), std::string::npos);
}

TEST(ControlTableTest, RendersDecisionLog) {
  LadderRig rig(LadderOptions());
  rig.probe.next.interval_count = 100;
  rig.probe.next.interval_p99_micros = 4000.0;
  rig.Tick();
  rig.probe.next.interval_p99_micros = 800.0;
  rig.Tick();

  Table table = BuildControlTable(rig.controller.decisions());
  EXPECT_EQ(table.row_count(), 2u);
  std::ostringstream os;
  table.Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("grow threads 1->2"), std::string::npos);
  EXPECT_NE(text.find("in band"), std::string::npos);
  EXPECT_NE(text.find("0->1"), std::string::npos)
      << "rung transition column missing:\n" << text;
}

// ---------------------------------------------------------------------------
// Simulator agreement: the controller core, fed a metric trace derived
// from a deterministic virtual-time simulation of a calm/burst/calm
// workload, escalates during the burst, de-escalates after it, and
// produces the identical decision trace on every run.

std::vector<ControlMetrics> SimMetricTrace() {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Node* op = qb.Select(src, "op", [](const Tuple&) { return true; });
  op->SetCostMicros(500.0);
  op->SetSelectivity(1.0);
  CountingSink* sink = qb.CountSink(op, "sink");
  sink->SetCostMicros(0.0);
  sink->SetSelectivity(1.0);

  // Service rate 2000/s. The 1000/s phases fit; the 4000/s burst backs
  // up ~2000 elements, which the long calm tail then drains — escalation
  // pressure followed by plenty of calm intervals to walk back down.
  SimOptions options;
  options.sample_interval = 1.0;
  Result<SimResult> sim =
      Simulate(graph, {{src, {{3000, 1000.0}, {4000, 4000.0}, {20000, 1000.0}}}},
               {SimThread{SimVo{op, sink}}}, options);
  CHECK_OK(sim.status());

  // Queueing delay is the latency proxy: p99 ~ (queued + 1) * cost.
  std::vector<ControlMetrics> trace;
  int64_t previous_results = 0;
  for (const SimSample& sample : sim->samples) {
    ControlMetrics m;
    m.interval_count = sample.results - previous_results;
    previous_results = sample.results;
    m.backlog = static_cast<size_t>(sample.queued);
    m.interval_p99_micros = (static_cast<double>(sample.queued) + 1.0) * 500.0;
    trace.push_back(m);
  }
  return trace;
}

std::vector<std::string> RunControllerOverTrace(
    const std::vector<ControlMetrics>& trace) {
  SloOptions o = LadderOptions();
  o.target_p99_micros = 10'000.0;  // ~10 queued elements
  o.allow_reshard = false;
  o.allow_shedding = false;  // capacity rungs only
  FakeProbe probe;
  FakeActuator actuator;
  VirtualControlClock clock;
  SloController controller(o, &probe, &actuator, &clock);
  int burst_rung = 0;
  for (const ControlMetrics& m : trace) {
    probe.next = m;
    clock.Advance(o.control_interval);
    controller.TickOnce();
    burst_rung = std::max(burst_rung, controller.current_rung());
  }
  EXPECT_GE(burst_rung, 1) << "never escalated during the burst";
  EXPECT_EQ(controller.current_rung(), 0)
      << "did not de-escalate after the burst drained";
  return actuator.calls;
}

TEST(ControlSimAgreementTest, BurstEscalatesDrainDeescalatesDeterministically) {
  const std::vector<ControlMetrics> trace = SimMetricTrace();
  ASSERT_GE(trace.size(), 20u);
  const std::vector<std::string> first = RunControllerOverTrace(trace);
  const std::vector<std::string> second = RunControllerOverTrace(trace);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "decision trace is not deterministic";
}

// ---------------------------------------------------------------------------
// Live engine actuation hooks.

struct PipelineFixture {
  QueryGraph graph;
  Source* src = nullptr;
  CollectingSink* sink = nullptr;

  PipelineFixture() {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    Node* op = qb.Select(src, "op", [](const Tuple&) { return true; });
    sink = qb.CollectSink(op, "sink");
  }
};

TEST(EngineActuationTest, ResizesThreadPoolLiveUnderHmts) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.ts.max_running = 1;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());

  EXPECT_TRUE(engine.SetMaxRunningThreads(3).ok());
  EXPECT_EQ(engine.options().ts.max_running, 3);
  EXPECT_EQ(engine.hmts()->thread_scheduler().max_running(), 3);

  for (int i = 0; i < 100; ++i) fx.src->Push(Tuple({Value(int64_t{i})}, i));
  fx.src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_EQ(fx.sink->TakeResults().size(), 100u);
}

TEST(EngineActuationTest, ThreadResizeRefusalsNameTheBlockingCondition) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  Status s = engine.SetMaxRunningThreads(2);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not configured"), std::string::npos);

  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(options).ok());
  s = engine.SetMaxRunningThreads(2);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("hmts"), std::string::npos);
  s = engine.SetMaxRunningThreads(0);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find(">= 1"), std::string::npos);
  ASSERT_TRUE(engine.Deconfigure().ok());
}

TEST(EngineActuationTest, ChangesEmitBatchSizeMidRunWithoutResultChange) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());

  std::vector<Tuple> expected;
  for (int i = 0; i < 100; ++i) {
    Tuple t({Value(int64_t{i})}, i);
    expected.push_back(t);
    fx.src->Push(t);
  }
  ASSERT_TRUE(engine.SetEmitBatchSizeLive(16).ok());
  EXPECT_EQ(engine.options().emit_batch_size, 16u);
  for (int i = 100; i < 300; ++i) {
    Tuple t({Value(int64_t{i})}, i);
    expected.push_back(t);
    fx.src->Push(t);
  }
  ASSERT_TRUE(engine.SetEmitBatchSizeLive(1).ok());
  for (int i = 300; i < 400; ++i) {
    Tuple t({Value(int64_t{i})}, i);
    expected.push_back(t);
    fx.src->Push(t);
  }
  fx.src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  // Exact sequence: a single-source chain is order-preserving, and batch
  // granularity changes must be invisible to results.
  EXPECT_EQ(fx.sink->TakeResults(), expected);
}

TEST(EngineActuationTest, ShedsExactlyTheAccountedOverflowAfterPolicyFlip) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.queue_max_elements = 4;
  options.overload_policy = OverloadPolicy::kBlock;
  ASSERT_TRUE(engine.Configure(options).ok());

  // Flip to shedding before the workers start, then overfeed: the source
  // queue (bound 4) keeps the first 4 and sheds the 16 newest. Every
  // missing element must be accounted by the drop counters.
  ASSERT_TRUE(engine.SetOverloadPolicyLive(OverloadPolicy::kShedNewest).ok());
  for (int i = 0; i < 20; ++i) fx.src->Push(Tuple({Value(int64_t{i})}, i));
  fx.src->Close(1000);
  ASSERT_TRUE(engine.Start().ok());
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();

  const std::vector<Tuple> results = fx.sink->TakeResults();
  EXPECT_EQ(results.size(), 4u);
  EXPECT_EQ(engine.DroppedElements(), 16);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].IntAt(0), static_cast<int64_t>(i))
        << "kShedNewest must keep the oldest prefix";
  }
}

TEST(EngineActuationTest, OverloadPolicyFlipRefusalsNameTheBlockingCondition) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;  // unbounded queues
  ASSERT_TRUE(engine.Configure(options).ok());
  Status s = engine.SetOverloadPolicyLive(OverloadPolicy::kShedNewest);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unbounded"), std::string::npos);
  ASSERT_TRUE(engine.Deconfigure().ok());

  options.queue_max_elements = 4;
  ASSERT_TRUE(engine.Configure(options).ok());
  s = engine.SetOverloadPolicyLive(OverloadPolicy::kShedOldest);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("kShedOldest"), std::string::npos)
      << s.message();
  ASSERT_TRUE(engine.Deconfigure().ok());
}

TEST(EngineActuationTest, ControllerDrivesRealEngineEndToEnd) {
  // Full loop on a live engine: EngineMetricsProbe + EngineActuator +
  // a virtual-clock controller ticked manually around a real run.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Node* op = qb.Select(src, "op", [](const Tuple&) { return true; });
  LatencySink* sink = graph.Add<LatencySink>("sink", 1, Now());
  CHECK_OK(graph.Connect(op, sink, 0));

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.ts.max_running = 1;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());

  EngineMetricsProbe probe(&engine, &graph);
  EngineActuator actuator(&engine);
  SloOptions slo;
  slo.target_p99_micros = 1.0;  // everything breaches: forces escalation
  slo.ewma_alpha = 1.0;
  slo.base_threads = 1;
  slo.max_threads = 2;
  slo.base_batch_size = 1;
  slo.max_batch_size = 4;
  slo.allow_shedding = false;
  VirtualControlClock clock;
  SloController controller(slo, &probe, &actuator, &clock);

  const TimePoint epoch = Now();
  for (int i = 0; i < 100; ++i) {
    src->Push(
        Tuple({Value(int64_t{i}), Value(ToMicros(Now() - epoch))}, i));
  }
  // Let at least one element complete so the probe's interval has data
  // (the tick would otherwise read an idle interval and hold).
  while (sink->count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  clock.Advance(slo.control_interval);
  ControlDecision d = controller.TickOnce();
  EXPECT_NE(d.trigger.find("slo"), std::string::npos) << d.trigger;
  for (int i = 100; i < 200; ++i) {
    src->Push(
        Tuple({Value(int64_t{i}), Value(ToMicros(Now() - epoch))}, i));
  }
  src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_TRUE(engine.RunResult().ok());
  EXPECT_EQ(sink->count(), 200);
  // The mid-run tick observed completions and escalated rung 1 live.
  EXPECT_GE(controller.actions_taken(), 1);
  EXPECT_EQ(engine.options().ts.max_running, 2);
}

// ---------------------------------------------------------------------------
// Structured refusals (satellite: SwitchTo / shard-count changes).

TEST(SwitchToRefusalTest, NamesTheBlockingCondition) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;

  Status s = engine.SwitchTo(options);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not configured"), std::string::npos);

  options.checkpoint_epoch_interval = 10;
  ASSERT_TRUE(engine.Configure(options).ok());
  EngineOptions other = options;
  other.mode = ExecutionMode::kOts;
  s = engine.SwitchTo(other);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("checkpointing is armed"), std::string::npos)
      << s.message();
  ASSERT_TRUE(engine.Deconfigure().ok());
}

TEST(ResizeShardRefusalTest, NamesTheBlockingCondition) {
  QueryGraph graph;
  ShardHandle empty;
  Result<ShardHandle> r = ResizeShard(&graph, empty, 4);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("does not describe a sharded cell"),
            std::string::npos);

  // A real cell, but the engine still holds queues: refused by name.
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = 1'000'000'000'000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  qb.CollectSink(agg, "sink");
  Result<ShardHandle> handle = ShardOperator(&graph, agg, ShardOptions{});
  ASSERT_TRUE(handle.ok());

  r = ResizeShard(&graph, *handle, 0);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(">= 1"), std::string::npos);

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.Configure(options).ok());
  r = ResizeShard(&graph, *handle, 4);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Deconfigure first"), std::string::npos)
      << r.status().message();
  ASSERT_TRUE(engine.Deconfigure().ok());
}

// ---------------------------------------------------------------------------
// Live reshard with state carry (the controller's rung 3).

std::vector<Tuple> ControlKeyedStream(int begin, int end) {
  std::vector<Tuple> stream;
  for (int i = begin; i < end; ++i) {
    stream.push_back(Tuple({Value(int64_t{i % 8}),
                            Value(static_cast<double>(i % 5))},
                           i + 1));
  }
  return stream;
}

TEST(ControlReshardTest, CarriesAggregateStateAcrossLiveResize) {
  // Golden: unsharded single-threaded run over the full stream.
  std::vector<Tuple> golden;
  {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* src = qb.AddSource("src");
    WindowedAggregate::Options agg_options;
    agg_options.kind = AggregateKind::kSum;
    agg_options.group_attr = 0;
    agg_options.value_attr = 1;
    agg_options.window_micros = 1'000'000'000'000;
    WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
    CollectingSink* sink = qb.CollectSink(agg, "sink");
    for (const Tuple& t : ControlKeyedStream(0, 300)) src->Push(t);
    src->Close(1000);
    golden = sink->TakeResults();
  }
  ASSERT_EQ(golden.size(), 300u);

  // Candidate: 2 shards for the first half, resized to 4 mid-stream. The
  // running sums must carry across the resize — any state loss shows up
  // as wrong aggregates in the second half.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = 1'000'000'000'000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  CollectingSink* sink = qb.CollectSink(agg, "sink");
  Result<ShardHandle> cell = ShardOperator(&graph, agg, ShardOptions{});
  ASSERT_TRUE(cell.ok());

  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  StreamEngine engine(&graph);
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (const Tuple& t : ControlKeyedStream(0, 150)) src->Push(t);
  // Quiesce: sources stopped pushing; Deconfigure drains every queue and
  // flushes the merge, so all 150 results are downstream before the
  // resize (the ResizeShard contract).
  ASSERT_TRUE(engine.Deconfigure().ok());

  Result<ShardHandle> resized = ResizeShard(&graph, *cell, 4);
  ASSERT_TRUE(resized.ok()) << resized.status().message();
  EXPECT_EQ(resized->replicas.size(), 4u);
  EXPECT_EQ(resized->options.generation, 1);
  EXPECT_NE(resized->replicas[0]->name().find(".g1.shard0"),
            std::string::npos);

  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (const Tuple& t : ControlKeyedStream(150, 300)) src->Push(t);
  src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  // Exact sequence: both generations use the ordered merge, and the
  // carried state makes the second half's running sums continue golden's.
  EXPECT_EQ(sink->TakeResults(), golden);
}

TEST(ControlReshardTest, ShrinksBackDownWithStateCarry) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  WindowedAggregate::Options agg_options;
  agg_options.kind = AggregateKind::kSum;
  agg_options.group_attr = 0;
  agg_options.value_attr = 1;
  agg_options.window_micros = 1'000'000'000'000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", agg_options);
  CollectingSink* sink = qb.CollectSink(agg, "sink");
  ShardOptions shard_options;
  shard_options.shards = 4;
  Result<ShardHandle> cell = ShardOperator(&graph, agg, shard_options);
  ASSERT_TRUE(cell.ok());

  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  StreamEngine engine(&graph);
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (const Tuple& t : ControlKeyedStream(0, 100)) src->Push(t);
  ASSERT_TRUE(engine.Deconfigure().ok());

  Result<ShardHandle> resized = ResizeShard(&graph, *cell, 2);
  ASSERT_TRUE(resized.ok()) << resized.status().message();
  EXPECT_EQ(resized->replicas.size(), 2u);

  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (const Tuple& t : ControlKeyedStream(100, 200)) src->Push(t);
  src->Close(1000);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  engine.Stop();

  std::vector<Tuple> golden;
  {
    QueryGraph g2;
    QueryBuilder qb2(&g2);
    Source* src2 = qb2.AddSource("src");
    WindowedAggregate* agg2 = qb2.Aggregate(src2, "agg", agg_options);
    CollectingSink* sink2 = qb2.CollectSink(agg2, "sink");
    for (const Tuple& t : ControlKeyedStream(0, 200)) src2->Push(t);
    src2->Close(1000);
    golden = sink2->TakeResults();
  }
  EXPECT_EQ(sink->TakeResults(), golden);
}

}  // namespace
}  // namespace flexstream

// StreamEngine integration: every execution mode produces identical
// results; queue placement per mode; runtime mode switching.

#include "api/stream_engine.h"

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "test_util.h"
#include "workload/rate_source.h"

namespace flexstream {
namespace {

// src -> sel(keep < 700) -> map(*2) -> sink over 1000 uniform ints: the
// shared small-but-non-trivial pipeline (tests/harness/test_util.h).
using PipelineFixture = testutil::LinearPipelineFixture;
using testutil::Sorted;

std::vector<Tuple> RunMode(ExecutionMode mode, StrategyKind strategy,
                           PlacementKind placement,
                           size_t* expected = nullptr) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = strategy;
  opt.placement = placement;
  EXPECT_TRUE(engine.Configure(opt).ok());
  EXPECT_TRUE(engine.Start().ok() || mode == ExecutionMode::kSourceDriven);
  fx.Feed();
  engine.WaitUntilFinished();
  if (expected != nullptr) *expected = fx.expected_results;
  return fx.sink->TakeResults();
}

TEST(StreamEngineTest, AllModesProduceIdenticalResults) {
  size_t expected = 0;
  const auto reference = Sorted(
      RunMode(ExecutionMode::kSourceDriven, StrategyKind::kFifo,
              PlacementKind::kStallAvoiding, &expected));
  EXPECT_EQ(reference.size(), expected) << "filter must pass values < 700";
  EXPECT_GT(expected, 600u);
  const struct {
    ExecutionMode mode;
    StrategyKind strategy;
    PlacementKind placement;
  } cases[] = {
      {ExecutionMode::kDirect, StrategyKind::kFifo,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kGts, StrategyKind::kFifo,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kGts, StrategyKind::kChain,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kGts, StrategyKind::kRoundRobin,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kGts, StrategyKind::kSegment,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kOts, StrategyKind::kFifo,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kHmts, StrategyKind::kFifo,
       PlacementKind::kStallAvoiding},
      {ExecutionMode::kHmts, StrategyKind::kChain,
       PlacementKind::kChain},
      {ExecutionMode::kHmts, StrategyKind::kFifo,
       PlacementKind::kSegment},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(Sorted(RunMode(c.mode, c.strategy, c.placement)), reference)
        << ExecutionModeToString(c.mode) << "/"
        << StrategyKindToString(c.strategy) << "/"
        << PlacementKindToString(c.placement);
  }
}

TEST(StreamEngineTest, QueueCountPerMode) {
  {
    PipelineFixture fx;
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kSourceDriven;
    ASSERT_TRUE(engine.Configure(opt).ok());
    EXPECT_EQ(engine.queues().size(), 0u);
    EXPECT_EQ(engine.WorkerThreadCount(), 0u);
  }
  {
    PipelineFixture fx;
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kDirect;
    ASSERT_TRUE(engine.Configure(opt).ok());
    EXPECT_EQ(engine.queues().size(), 1u) << "one queue after the source";
    EXPECT_EQ(engine.WorkerThreadCount(), 1u);
  }
  {
    PipelineFixture fx;
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kGts;
    ASSERT_TRUE(engine.Configure(opt).ok());
    // Edges: src->sel, sel->map get queues; map->sink stays DI.
    EXPECT_EQ(engine.queues().size(), 2u);
    EXPECT_EQ(engine.WorkerThreadCount(), 1u);
  }
  {
    PipelineFixture fx;
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kOts;
    ASSERT_TRUE(engine.Configure(opt).ok());
    EXPECT_EQ(engine.queues().size(), 2u);
    EXPECT_EQ(engine.WorkerThreadCount(), 2u) << "one thread per operator";
  }
}

TEST(StreamEngineTest, HmtsPlacementDecouplesSources) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_NE(engine.partitioning(), nullptr);
  // The source sits alone; all cheap operators share one partition.
  EXPECT_GE(engine.queues().size(), 1u);
  EXPECT_GE(engine.WorkerThreadCount(), 1u);
  ASSERT_NE(engine.hmts(), nullptr);
}

TEST(StreamEngineTest, ConfigureTwiceFails) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  ASSERT_TRUE(engine.Configure(opt).ok());
  EXPECT_EQ(engine.Configure(opt).code(), StatusCode::kFailedPrecondition);
}

TEST(StreamEngineTest, StartRequiresConfigure) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EXPECT_EQ(engine.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(StreamEngineTest, DeconfigureRestoresQueueFreeGraph) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  EXPECT_EQ(fx.graph.Queues().size(), 2u);
  ASSERT_TRUE(engine.Deconfigure().ok());
  EXPECT_TRUE(fx.graph.Queues().empty());
  EXPECT_TRUE(fx.graph.Validate().ok());
  // Can reconfigure in another mode.
  opt.mode = ExecutionMode::kOts;
  EXPECT_TRUE(engine.Configure(opt).ok());
}

TEST(StreamEngineTest, DeconfigureDrainsPendingElements) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  // Never started: elements pile up in the source queue.
  fx.src->Push(Tuple::OfInt(1, 1));
  fx.src->Push(Tuple::OfInt(500, 2));
  EXPECT_EQ(engine.QueuedElements(), 2u);
  ASSERT_TRUE(engine.Deconfigure().ok());
  // Draining pushed them through the whole pipeline.
  EXPECT_EQ(fx.sink->size(), 2u);
}

TEST(StreamEngineTest, SwitchGtsToOtsKeepsQueuesAndFinishes) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(7);
  fx.PushRandom(&rng, 0, 500);
  const std::vector<QueueOp*> before = engine.queues();
  EngineOptions ots;
  ots.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.SwitchTo(ots).ok());
  EXPECT_EQ(engine.queues(), before) << "same queue objects survive";
  fx.PushRandom(&rng, 500, 1000);
  fx.src->Close(1000);
  engine.WaitUntilFinished();
  EXPECT_EQ(fx.sink->size(), fx.expected_results);
}

TEST(StreamEngineTest, StructuralSwitchWithPausedSources) {
  PipelineFixture fx;
  StreamEngine engine(&fx.graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  Rng rng(7);
  fx.PushRandom(&rng, 0, 500);
  // Pause (no pushes during the switch), then re-place structurally.
  EngineOptions hmts;
  hmts.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.SwitchTo(hmts).ok());
  fx.PushRandom(&rng, 500, 1000);
  fx.src->Close(1000);
  engine.WaitUntilFinished();
  EXPECT_EQ(fx.sink->size(), fx.expected_results);
}

TEST(StreamEngineTest, ResetForRerunAllowsFreshRun) {
  PipelineFixture fx;
  for (int run = 0; run < 2; ++run) {
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = ExecutionMode::kGts;
    ASSERT_TRUE(engine.Configure(opt).ok());
    ASSERT_TRUE(engine.Start().ok());
    fx.expected_results = 0;
    fx.Feed();
    engine.WaitUntilFinished();
    EXPECT_EQ(fx.sink->size(), fx.expected_results) << "run " << run;
    ASSERT_TRUE(engine.ResetForRerun().ok());
    EXPECT_EQ(fx.sink->size(), 0u);
  }
}

TEST(StreamEngineTest, SharedSubqueryAcrossModes) {
  // Two queries sharing a source and a selection (Figure 1 style).
  for (auto mode : {ExecutionMode::kGts, ExecutionMode::kOts,
                    ExecutionMode::kHmts}) {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* src = qb.AddSource("src");
    src->SetInterarrivalMicros(100.0);
    Node* shared = qb.Select(src, "shared",
                             Selection::IntAttrLessThan(500));
    shared->SetSelectivity(0.5);
    shared->SetCostMicros(1.0);
    Node* q1 = qb.Select(shared, "q1", Selection::IntAttrLessThan(100));
    q1->SetSelectivity(0.2);
    q1->SetCostMicros(1.0);
    Node* q2 = qb.Select(shared, "q2", [](const Tuple& t) {
      return t.IntAt(0) >= 100;
    });
    q2->SetSelectivity(0.8);
    q2->SetCostMicros(1.0);
    CountingSink* sink1 = qb.CountSink(q1, "sink1");
    CountingSink* sink2 = qb.CountSink(q2, "sink2");
    StreamEngine engine(&graph);
    EngineOptions opt;
    opt.mode = mode;
    ASSERT_TRUE(engine.Configure(opt).ok());
    ASSERT_TRUE(engine.Start().ok());
    for (int i = 0; i < 1000; ++i) src->Push(Tuple::OfInt(i % 1000, i));
    src->Close(1000);
    engine.WaitUntilFinished();
    EXPECT_EQ(sink1->count(), 100) << ExecutionModeToString(mode);
    EXPECT_EQ(sink2->count(), 400) << ExecutionModeToString(mode);
  }
}

TEST(StreamEngineTest, JoinQueryUnderAllScheduledModes) {
  for (auto mode : {ExecutionMode::kGts, ExecutionMode::kOts,
                    ExecutionMode::kHmts}) {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* left = qb.AddSource("left");
    Source* right = qb.AddSource("right");
    left->SetInterarrivalMicros(100.0);
    right->SetInterarrivalMicros(100.0);
    Node* join = qb.HashJoin(left, right, "join", /*window=*/1'000'000);
    CollectingSink* sink = qb.CollectSink(join, "sink");
    StreamEngine engine(&graph);
    EngineOptions opt;
    opt.mode = mode;
    ASSERT_TRUE(engine.Configure(opt).ok());
    ASSERT_TRUE(engine.Start().ok());
    // Drive both sources from separate threads (autonomous sources).
    RateSource::Options ropt;
    ropt.phases = {{500, 0.0}};
    ropt.seed = 1;
    RateSource left_driver(left, ropt, RateSource::UniformInt(0, 49));
    ropt.seed = 2;
    RateSource right_driver(right, ropt, RateSource::UniformInt(0, 49));
    left_driver.Start();
    right_driver.Start();
    left_driver.Join();
    right_driver.Join();
    engine.WaitUntilFinished();
    // ~500*500/50 = 5000 expected matches; exact count is deterministic
    // given the seeds but we only check plausibility and cross-mode use.
    EXPECT_GT(sink->size(), 3000u) << ExecutionModeToString(mode);
  }
}

}  // namespace
}  // namespace flexstream

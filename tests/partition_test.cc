// Level-2 Partition: run loops, completion, stopping, queue accounting.

#include "sched/partition.h"

#include <gtest/gtest.h>

#include <thread>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "sched/fifo_strategy.h"

namespace flexstream {
namespace {

struct PipelineRig {
  QueryGraph graph;
  Source* src;
  QueueOp* queue;
  CountingSink* sink;

  PipelineRig() {
    src = graph.Add<Source>("src");
    queue = graph.Add<QueueOp>("q");
    sink = graph.Add<CountingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, queue).ok());
    EXPECT_TRUE(graph.Connect(queue, sink).ok());
  }
};

TEST(PartitionTest, DrainsQueueToCompletion) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  for (int i = 0; i < 100; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(100);
  partition.Start();
  rig.sink->WaitUntilClosed();
  partition.Join();
  EXPECT_EQ(rig.sink->count(), 100);
  EXPECT_TRUE(partition.Done());
  EXPECT_EQ(partition.drained(), 100);
}

TEST(PartitionTest, ProcessesElementsArrivingWhileRunning) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  partition.Start();
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) {
      rig.src->Push(Tuple::OfInt(i, i));
      if (i % 100 == 0) std::this_thread::yield();
    }
    rig.src->Close(1000);
  });
  producer.join();
  rig.sink->WaitUntilClosed();
  partition.Join();
  EXPECT_EQ(rig.sink->count(), 1000);
}

TEST(PartitionTest, StopInterruptsBeforeCompletion) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  // No EOS: the partition would wait forever without RequestStop.
  rig.src->Push(Tuple::OfInt(1, 1));
  partition.Start();
  while (rig.sink->count() < 1) std::this_thread::yield();
  partition.RequestStop();
  partition.Join();
  EXPECT_FALSE(partition.Done());
  EXPECT_FALSE(partition.running());
}

TEST(PartitionTest, RunInCallingThread) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(10);
  partition.Run();  // returns when done
  EXPECT_TRUE(partition.Done());
  EXPECT_EQ(rig.sink->count(), 10);
}

TEST(PartitionTest, MultiQueuePartitionDrainsAll) {
  QueryGraph g;
  Source* srcs[3];
  QueueOp* queues[3];
  CountingSink* sinks[3];
  std::vector<QueueOp*> queue_list;
  for (int i = 0; i < 3; ++i) {
    srcs[i] = g.Add<Source>("src" + std::to_string(i));
    queues[i] = g.Add<QueueOp>("q" + std::to_string(i));
    sinks[i] = g.Add<CountingSink>("sink" + std::to_string(i));
    ASSERT_TRUE(g.Connect(srcs[i], queues[i]).ok());
    ASSERT_TRUE(g.Connect(queues[i], sinks[i]).ok());
    queue_list.push_back(queues[i]);
  }
  Partition partition("p", queue_list, std::make_unique<FifoStrategy>());
  for (int i = 0; i < 50; ++i) {
    for (int s = 0; s < 3; ++s) srcs[s]->Push(Tuple::OfInt(i, i));
  }
  for (int s = 0; s < 3; ++s) srcs[s]->Close(50);
  partition.Run();
  for (int s = 0; s < 3; ++s) EXPECT_EQ(sinks[s]->count(), 50);
  EXPECT_TRUE(partition.Done());
}

TEST(PartitionTest, QueuedElementsSumsQueues) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(partition.QueuedElements(), 2u);
}

TEST(PartitionTest, EmptyPartitionIsDoneOnlyAfterEos) {
  PipelineRig rig;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
  EXPECT_FALSE(partition.Done()) << "no EOS seen yet";
  rig.src->Close(0);
  partition.Run();
  EXPECT_TRUE(partition.Done());
  EXPECT_TRUE(rig.sink->closed());
}

TEST(PartitionTest, DestructorStopsRunningWorker) {
  PipelineRig rig;
  {
    Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>());
    rig.src->Push(Tuple::OfInt(1, 1));
    partition.Start();
    // No Close: partition would run forever; destructor must stop it.
  }
  SUCCEED();
}

TEST(PartitionTest, SmallBatchSizeStillCompletes) {
  PipelineRig rig;
  Partition::Options options;
  options.batch_size = 1;
  Partition partition("p", {rig.queue}, std::make_unique<FifoStrategy>(),
                      options);
  for (int i = 0; i < 20; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(20);
  partition.Run();
  EXPECT_EQ(rig.sink->count(), 20);
}

}  // namespace
}  // namespace flexstream

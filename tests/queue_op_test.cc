// QueueOp: thread-safe enqueue, FIFO drain, EOS forwarding, listeners.

#include "queue/queue_op.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "test_util.h"

namespace flexstream {
namespace {

// src -> queue -> sink, drained manually (tests/harness/test_util.h).
using QueueRig = testutil::QueueRig;

TEST(QueueOpTest, BuffersUntilDrained) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(rig.queue->Size(), 2u);
  EXPECT_EQ(rig.sink->size(), 0u) << "queue decouples: nothing flows yet";
  EXPECT_EQ(rig.queue->DrainBatch(10), 2u);
  EXPECT_EQ(rig.sink->size(), 2u);
  EXPECT_EQ(rig.queue->Size(), 0u);
}

TEST(QueueOpTest, DrainRespectsBatchLimit) {
  QueueRig rig;
  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(rig.queue->DrainBatch(3), 3u);
  EXPECT_EQ(rig.queue->Size(), 7u);
  EXPECT_EQ(rig.sink->size(), 3u);
}

TEST(QueueOpTest, FifoOrderPreserved) {
  QueueRig rig;
  for (int i = 0; i < 5; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.queue->DrainBatch(100);
  auto results = rig.sink->TakeResults();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

TEST(QueueOpTest, EosForwardedOnceAfterData) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(2);
  EXPECT_TRUE(rig.queue->InputClosed());
  EXPECT_FALSE(rig.queue->Exhausted()) << "EOS still queued";
  EXPECT_FALSE(rig.sink->closed());
  rig.queue->DrainBatch(100);
  EXPECT_TRUE(rig.queue->Exhausted());
  EXPECT_TRUE(rig.sink->closed());
}

TEST(QueueOpTest, DrainStopsAtEos) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(1);
  // One call drains the data element and the EOS (batch allows more).
  EXPECT_EQ(rig.queue->DrainBatch(100), 1u);
  EXPECT_TRUE(rig.queue->Exhausted());
}

TEST(QueueOpTest, MultiProducerEosCounting) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q");
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(b, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  a->Push(Tuple::OfInt(1, 1));
  a->Close(1);
  q->DrainBatch(100);
  EXPECT_FALSE(q->InputClosed()) << "b still open";
  EXPECT_FALSE(sink->closed());
  b->Push(Tuple::OfInt(2, 2));
  b->Close(2);
  q->DrainBatch(100);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(sink->size(), 2u);
}

TEST(QueueOpTest, HeadSeqOrdersAcrossQueues) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* qa = g.Add<QueueOp>("qa");
  QueueOp* qb = g.Add<QueueOp>("qb");
  CollectingSink* sa = g.Add<CollectingSink>("sa");
  CollectingSink* sb = g.Add<CollectingSink>("sb");
  ASSERT_TRUE(g.Connect(a, qa).ok());
  ASSERT_TRUE(g.Connect(b, qb).ok());
  ASSERT_TRUE(g.Connect(qa, sa).ok());
  ASSERT_TRUE(g.Connect(qb, sb).ok());
  EXPECT_EQ(qa->HeadSeq(), QueueOp::kNoSeq);
  a->Push(Tuple::OfInt(1, 1));
  b->Push(Tuple::OfInt(2, 2));
  a->Push(Tuple::OfInt(3, 3));
  EXPECT_LT(qa->HeadSeq(), qb->HeadSeq())
      << "a's first element arrived before b's";
}

TEST(QueueOpTest, PeakSizeTracksHighWater) {
  QueueRig rig;
  for (int i = 0; i < 7; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.queue->DrainBatch(5);
  rig.src->Push(Tuple::OfInt(9, 9));
  EXPECT_EQ(rig.queue->PeakSize(), 7u);
}

TEST(QueueOpTest, ListenerCoalescedToEmptyTransitions) {
  QueueRig rig;
  std::atomic<int> notified{0};
  rig.queue->SetEnqueueListener([&] { notified.fetch_add(1); });
  rig.src->Push(Tuple::OfInt(1, 1));
  EXPECT_EQ(notified.load(), 1) << "empty -> non-empty notifies";
  rig.src->Push(Tuple::OfInt(2, 2));
  rig.src->Push(Tuple::OfInt(3, 3));
  EXPECT_EQ(notified.load(), 1)
      << "enqueues into a non-empty queue are coalesced";
  rig.queue->DrainBatch(100);
  rig.src->Push(Tuple::OfInt(4, 4));
  EXPECT_EQ(notified.load(), 2) << "drained empty, so the next push notifies";
  rig.src->Close(4);
  EXPECT_EQ(notified.load(), 3) << "EOS enqueue always notifies";
  EXPECT_EQ(rig.queue->notifications(), 3);
}

TEST(QueueOpTest, ResetClearsEverything) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(1);
  rig.graph.ResetAll();
  EXPECT_EQ(rig.queue->Size(), 0u);
  EXPECT_FALSE(rig.queue->InputClosed());
  EXPECT_FALSE(rig.queue->Exhausted());
  EXPECT_EQ(rig.queue->PeakSize(), 0u);
  EXPECT_EQ(rig.queue->HeadSeq(), QueueOp::kNoSeq);
}

TEST(QueueOpTest, SingleProducerModeDrainsFifoThroughRing) {
  QueueRig rig;
  rig.queue->SetSingleProducer(true);
  for (int i = 0; i < 5; ++i) rig.src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(rig.queue->Size(), 5u);
  EXPECT_EQ(rig.queue->ring_pushes(), 5);
  EXPECT_EQ(rig.queue->locked_pushes(), 0);
  EXPECT_EQ(rig.queue->DrainBatch(100), 5u);
  auto results = rig.sink->TakeResults();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

TEST(QueueOpTest, SingleProducerOverflowSpillsAndKeepsOrder) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  // Tiny ring: capacity rounds up to 4, so most pushes spill.
  QueueOp* q = g.Add<QueueOp>("q", /*ring_capacity=*/4);
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(true);
  constexpr int kCount = 100;
  for (int i = 0; i < kCount; ++i) src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(q->Size(), static_cast<size_t>(kCount));
  EXPECT_GT(q->locked_pushes(), 0) << "the tiny ring must have overflowed";
  // Interleave partial drains with more pushes so ring and spillover both
  // hold elements while draining.
  EXPECT_EQ(q->DrainBatch(10), 10u);
  for (int i = kCount; i < kCount + 20; ++i) src->Push(Tuple::OfInt(i, i));
  while (q->Size() > 0) q->DrainBatch(7);
  src->Close(kCount + 20);
  q->DrainBatch(100);
  EXPECT_TRUE(q->Exhausted());
  EXPECT_TRUE(sink->closed());
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kCount + 20));
  for (int i = 0; i < kCount + 20; ++i) {
    EXPECT_EQ(results[i].IntAt(0), i) << "FIFO order across ring/spillover";
  }
}

TEST(QueueOpTest, SingleProducerEosThroughRing) {
  QueueRig rig;
  rig.queue->SetSingleProducer(true);
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(2);
  EXPECT_TRUE(rig.queue->InputClosed());
  EXPECT_FALSE(rig.queue->Exhausted());
  EXPECT_EQ(rig.queue->DrainBatch(100), 1u);
  EXPECT_TRUE(rig.queue->Exhausted());
  EXPECT_TRUE(rig.sink->closed());
}

TEST(QueueOpTest, SingleProducerHeadSeqMergesRingAndSpillover) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  QueueOp* q = g.Add<QueueOp>("q", /*ring_capacity=*/2);
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(true);
  EXPECT_EQ(q->HeadSeq(), QueueOp::kNoSeq);
  for (int i = 0; i < 6; ++i) src->Push(Tuple::OfInt(i, i));
  ASSERT_GT(q->locked_pushes(), 0);
  const uint64_t head = q->HeadSeq();
  EXPECT_NE(head, QueueOp::kNoSeq);
  // Draining one element must advance the head sequence (the ring holds
  // the oldest elements, the spillover the newest).
  q->DrainBatch(1);
  EXPECT_GT(q->HeadSeq(), head);
}

TEST(QueueOpTest, MoveReceiveAdoptsPayload) {
  QueueRig rig;
  rig.queue->SetSingleProducer(true);
  Tuple t({Value(std::string("payload-string-well-beyond-sso-limits"))}, 7);
  rig.queue->Receive(std::move(t), 0);
  EXPECT_EQ(rig.queue->Size(), 1u);
  rig.queue->DrainBatch(1);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].StringAt(0),
            "payload-string-well-beyond-sso-limits");
}

TEST(QueueOpTest, ResetClearsSingleProducerState) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  QueueOp* q = g.Add<QueueOp>("q", /*ring_capacity=*/4);
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(true);
  for (int i = 0; i < 20; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(20);
  g.ResetAll();
  EXPECT_EQ(q->Size(), 0u);
  EXPECT_FALSE(q->InputClosed());
  EXPECT_FALSE(q->Exhausted());
  EXPECT_EQ(q->HeadSeq(), QueueOp::kNoSeq);
  EXPECT_TRUE(q->single_producer()) << "enqueue-path mode survives Reset";
  // The queue must be fully usable again after Reset.
  src->Push(Tuple::OfInt(42, 1));
  src->Close(1);
  EXPECT_EQ(q->DrainBatch(10), 1u);
  EXPECT_TRUE(q->Exhausted());
}

TEST(QueueOpTest, ConcurrentProducersSingleConsumer) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q");
  CountingSink* sink = g.Add<CountingSink>("sink");
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(b, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  constexpr int kPerProducer = 30000;
  std::thread ta([&] {
    for (int i = 0; i < kPerProducer; ++i) a->Push(Tuple::OfInt(i, i));
    a->Close(kPerProducer);
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerProducer; ++i) b->Push(Tuple::OfInt(i, i));
    b->Close(kPerProducer);
  });
  // Consumer drains concurrently with the producers.
  while (!q->Exhausted()) {
    q->DrainBatch(256);
  }
  ta.join();
  tb.join();
  EXPECT_EQ(sink->count(), 2 * kPerProducer);
  EXPECT_TRUE(sink->closed());
}

}  // namespace
}  // namespace flexstream

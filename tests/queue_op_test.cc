// QueueOp: thread-safe enqueue, FIFO drain, EOS forwarding, listeners.

#include "queue/queue_op.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"

namespace flexstream {
namespace {

struct QueueRig {
  QueryGraph graph;
  Source* src;
  QueueOp* queue;
  CollectingSink* sink;

  QueueRig() {
    src = graph.Add<Source>("src");
    queue = graph.Add<QueueOp>("q");
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, queue).ok());
    EXPECT_TRUE(graph.Connect(queue, sink).ok());
  }
};

TEST(QueueOpTest, BuffersUntilDrained) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(rig.queue->Size(), 2u);
  EXPECT_EQ(rig.sink->size(), 0u) << "queue decouples: nothing flows yet";
  EXPECT_EQ(rig.queue->DrainBatch(10), 2u);
  EXPECT_EQ(rig.sink->size(), 2u);
  EXPECT_EQ(rig.queue->Size(), 0u);
}

TEST(QueueOpTest, DrainRespectsBatchLimit) {
  QueueRig rig;
  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(rig.queue->DrainBatch(3), 3u);
  EXPECT_EQ(rig.queue->Size(), 7u);
  EXPECT_EQ(rig.sink->size(), 3u);
}

TEST(QueueOpTest, FifoOrderPreserved) {
  QueueRig rig;
  for (int i = 0; i < 5; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.queue->DrainBatch(100);
  auto results = rig.sink->TakeResults();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(results[i].IntAt(0), i);
}

TEST(QueueOpTest, EosForwardedOnceAfterData) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(2);
  EXPECT_TRUE(rig.queue->InputClosed());
  EXPECT_FALSE(rig.queue->Exhausted()) << "EOS still queued";
  EXPECT_FALSE(rig.sink->closed());
  rig.queue->DrainBatch(100);
  EXPECT_TRUE(rig.queue->Exhausted());
  EXPECT_TRUE(rig.sink->closed());
}

TEST(QueueOpTest, DrainStopsAtEos) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(1);
  // One call drains the data element and the EOS (batch allows more).
  EXPECT_EQ(rig.queue->DrainBatch(100), 1u);
  EXPECT_TRUE(rig.queue->Exhausted());
}

TEST(QueueOpTest, MultiProducerEosCounting) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q");
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(b, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  a->Push(Tuple::OfInt(1, 1));
  a->Close(1);
  q->DrainBatch(100);
  EXPECT_FALSE(q->InputClosed()) << "b still open";
  EXPECT_FALSE(sink->closed());
  b->Push(Tuple::OfInt(2, 2));
  b->Close(2);
  q->DrainBatch(100);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(sink->size(), 2u);
}

TEST(QueueOpTest, HeadSeqOrdersAcrossQueues) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* qa = g.Add<QueueOp>("qa");
  QueueOp* qb = g.Add<QueueOp>("qb");
  CollectingSink* sa = g.Add<CollectingSink>("sa");
  CollectingSink* sb = g.Add<CollectingSink>("sb");
  ASSERT_TRUE(g.Connect(a, qa).ok());
  ASSERT_TRUE(g.Connect(b, qb).ok());
  ASSERT_TRUE(g.Connect(qa, sa).ok());
  ASSERT_TRUE(g.Connect(qb, sb).ok());
  EXPECT_EQ(qa->HeadSeq(), QueueOp::kNoSeq);
  a->Push(Tuple::OfInt(1, 1));
  b->Push(Tuple::OfInt(2, 2));
  a->Push(Tuple::OfInt(3, 3));
  EXPECT_LT(qa->HeadSeq(), qb->HeadSeq())
      << "a's first element arrived before b's";
}

TEST(QueueOpTest, PeakSizeTracksHighWater) {
  QueueRig rig;
  for (int i = 0; i < 7; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.queue->DrainBatch(5);
  rig.src->Push(Tuple::OfInt(9, 9));
  EXPECT_EQ(rig.queue->PeakSize(), 7u);
}

TEST(QueueOpTest, ListenerFiresOnEnqueue) {
  QueueRig rig;
  std::atomic<int> notified{0};
  rig.queue->SetEnqueueListener([&] { notified.fetch_add(1); });
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(notified.load(), 2);
  rig.src->Close(2);
  EXPECT_EQ(notified.load(), 3) << "EOS enqueue also notifies";
}

TEST(QueueOpTest, ResetClearsEverything) {
  QueueRig rig;
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Close(1);
  rig.graph.ResetAll();
  EXPECT_EQ(rig.queue->Size(), 0u);
  EXPECT_FALSE(rig.queue->InputClosed());
  EXPECT_FALSE(rig.queue->Exhausted());
  EXPECT_EQ(rig.queue->PeakSize(), 0u);
  EXPECT_EQ(rig.queue->HeadSeq(), QueueOp::kNoSeq);
}

TEST(QueueOpTest, ConcurrentProducersSingleConsumer) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q");
  CountingSink* sink = g.Add<CountingSink>("sink");
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(b, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  constexpr int kPerProducer = 30000;
  std::thread ta([&] {
    for (int i = 0; i < kPerProducer; ++i) a->Push(Tuple::OfInt(i, i));
    a->Close(kPerProducer);
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerProducer; ++i) b->Push(Tuple::OfInt(i, i));
    b->Close(kPerProducer);
  });
  // Consumer drains concurrently with the producers.
  while (!q->Exhausted()) {
    q->DrainBatch(256);
  }
  ta.join();
  tb.join();
  EXPECT_EQ(sink->count(), 2 * kPerProducer);
  EXPECT_TRUE(sink->closed());
}

}  // namespace
}  // namespace flexstream

// Lower-envelope computation for the Chain strategy (Babcock et al.) and
// the DownstreamChain helper.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "sched/chain_strategy.h"
#include "util/random.h"

namespace flexstream {
namespace {

TEST(LowerEnvelopeTest, SingleOperatorIsOneSegment) {
  auto segments = ComputeLowerEnvelope({10.0}, {0.5});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].begin, 0u);
  EXPECT_EQ(segments[0].end, 1u);
  EXPECT_NEAR(segments[0].slope, 0.05, 1e-9);
}

TEST(LowerEnvelopeTest, SteeperSecondOperatorMergesIntoOneSegment) {
  // Babcock et al.'s canonical case: a cheap low-selectivity operator after
  // a cheap pass-through merges both into one steep segment.
  auto segments = ComputeLowerEnvelope({1.0, 1.0}, {1.0, 0.0});
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].end, 2u);
  EXPECT_NEAR(segments[0].slope, 0.5, 1e-9);
}

TEST(LowerEnvelopeTest, ExpensiveTailFormsOwnSegment) {
  // Selective cheap filter followed by an expensive operator: the envelope
  // splits between them.
  auto segments = ComputeLowerEnvelope({1.0, 100.0}, {0.1, 1.0});
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].end, 1u);
  EXPECT_NEAR(segments[0].slope, 0.9, 1e-9);
  EXPECT_NEAR(segments[1].slope, 0.0, 1e-9);
}

TEST(LowerEnvelopeTest, SlopesAreNonIncreasing) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> costs;
    std::vector<double> sels;
    const int n = 1 + static_cast<int>(rng.NextU64(8));
    for (int i = 0; i < n; ++i) {
      costs.push_back(rng.UniformDouble(0.1, 50.0));
      sels.push_back(rng.UniformDouble(0.0, 1.0));
    }
    auto segments = ComputeLowerEnvelope(costs, sels);
    ASSERT_FALSE(segments.empty());
    EXPECT_EQ(segments.front().begin, 0u);
    EXPECT_EQ(segments.back().end, static_cast<size_t>(n));
    for (size_t i = 0; i + 1 < segments.size(); ++i) {
      EXPECT_EQ(segments[i].end, segments[i + 1].begin)
          << "segments must tile the chain";
      EXPECT_GE(segments[i].slope, segments[i + 1].slope - 1e-9)
          << "lower envelope slopes must be non-increasing";
    }
  }
}

TEST(LowerEnvelopeTest, ZeroCostClamped) {
  auto segments = ComputeLowerEnvelope({0.0, 0.0}, {0.5, 0.5});
  ASSERT_FALSE(segments.empty());
  for (const auto& s : segments) {
    EXPECT_TRUE(std::isfinite(s.slope));
  }
}

TEST(LowerEnvelopeTest, EmptyChain) {
  EXPECT_TRUE(ComputeLowerEnvelope({}, {}).empty());
}

TEST(DownstreamChainTest, FollowsUnaryOperators) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  auto mk = [&](const char* name) {
    return g.Add<Selection>(name, [](const Tuple&) { return true; });
  };
  Selection* a = mk("a");
  Selection* b = mk("b");
  Selection* c = mk("c");
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, a).ok());
  ASSERT_TRUE(g.Connect(a, b).ok());
  ASSERT_TRUE(g.Connect(b, c).ok());
  ASSERT_TRUE(g.Connect(c, sink).ok());
  auto chain = DownstreamChain(a);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], a);
  EXPECT_EQ(chain[2], c);
}

TEST(DownstreamChainTest, SkipsThroughQueuesStopsAtBranch) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  auto mk = [&](const char* name) {
    return g.Add<Selection>(name, [](const Tuple&) { return true; });
  };
  Selection* a = mk("a");
  Selection* b = mk("b");
  Selection* c1 = mk("c1");
  Selection* c2 = mk("c2");
  QueueOp* q = g.Add<QueueOp>("q");
  ASSERT_TRUE(g.Connect(src, a).ok());
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(q, b).ok());
  ASSERT_TRUE(g.Connect(b, c1).ok());
  ASSERT_TRUE(g.Connect(b, c2).ok());
  // Queues are transparent: a's chain passes through q to b, then stops
  // at the branch. b's chain is just b.
  auto a_chain = DownstreamChain(a);
  ASSERT_EQ(a_chain.size(), 2u);
  EXPECT_EQ(a_chain[0], a);
  EXPECT_EQ(a_chain[1], b);
  EXPECT_EQ(DownstreamChain(b).size(), 1u);
}

}  // namespace
}  // namespace flexstream

// Rate-controlled autonomous sources.

#include "workload/rate_source.h"

#include <gtest/gtest.h>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "util/busy_work.h"

namespace flexstream {
namespace {

struct SourceRig {
  QueryGraph graph;
  Source* src;
  CollectingSink* sink;

  SourceRig() {
    src = graph.Add<Source>("src");
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, sink).ok());
  }
};

TEST(PhaseTest, Helpers) {
  std::vector<Phase> phases{{100, 50.0}, {200, 0.0}, {300, 100.0}};
  EXPECT_EQ(TotalCount(phases), 600);
  EXPECT_NEAR(ExpectedDurationSeconds(phases), 2.0 + 3.0, 1e-9);
  EXPECT_FALSE(PhasesToString(phases).empty());
}

TEST(RateSourceTest, EmitsExactCountThenCloses) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{50, 0.0}};  // unpaced
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  EXPECT_EQ(driver.emitted(), 50);
  EXPECT_EQ(rig.sink->size(), 50u);
  EXPECT_TRUE(rig.sink->closed());
}

TEST(RateSourceTest, TimestampsStrictlyMonotoneWhenUnpaced) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{100, 0.0}};
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  auto results = rig.sink->TakeResults();
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_GT(results[i].timestamp(), results[i - 1].timestamp());
  }
}

TEST(RateSourceTest, ConstantPacingMatchesSchedule) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{100, 1000.0}};  // 100 elements at 1000/s = 0.1 s
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  Stopwatch sw;
  driver.Run();
  EXPECT_GE(sw.ElapsedSeconds(), 0.09);
  EXPECT_LT(sw.ElapsedSeconds(), 0.5);
  // App timestamps follow the schedule: last ~ 100 * 1000us.
  auto results = rig.sink->TakeResults();
  EXPECT_NEAR(static_cast<double>(results.back().timestamp()), 100'000.0,
              1.0);
}

TEST(RateSourceTest, TimeScaleSpeedsUpWallClock) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{100, 1000.0}};
  opt.time_scale = 10.0;  // 10x faster than the logical schedule
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  Stopwatch sw;
  driver.Run();
  EXPECT_LT(sw.ElapsedSeconds(), 0.1);
  auto results = rig.sink->TakeResults();
  EXPECT_NEAR(static_cast<double>(results.back().timestamp()), 100'000.0,
              1.0)
      << "application timestamps are unaffected by time_scale";
}

TEST(RateSourceTest, PoissonPacingHasSameMeanSchedule) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{2000, 0.0}};
  opt.pacing = RateSource::Pacing::kPoisson;
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  EXPECT_EQ(rig.sink->size(), 2000u);
}

TEST(RateSourceTest, PoissonTimestampGapsAreExponential) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{5000, 10000.0}};  // mean gap 100 us
  opt.pacing = RateSource::Pacing::kPoisson;
  opt.time_scale = 100.0;  // keep the test fast
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  auto results = rig.sink->TakeResults();
  double sum = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    sum += static_cast<double>(results[i].timestamp() -
                               results[i - 1].timestamp());
  }
  EXPECT_NEAR(sum / static_cast<double>(results.size() - 1), 100.0, 10.0);
}

TEST(RateSourceTest, MultiPhaseSchedule) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{10, 0.0}, {20, 0.0}, {30, 0.0}};
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  EXPECT_EQ(driver.emitted(), 60);
}

TEST(RateSourceTest, StartJoinRunsInBackground) {
  SourceRig rig;
  rig.sink->SetSerializedReceive(true);
  RateSource::Options opt;
  opt.phases = {{100, 0.0}};
  RateSource driver(rig.src, opt, RateSource::UniformInt(0, 9));
  driver.Start();
  driver.Join();
  EXPECT_EQ(rig.sink->size(), 100u);
}

TEST(RateSourceTest, RateTimelineRecordsBackpressure) {
  // A slow consumer forces the achieved rate below the schedule — the
  // Figure 6 measurement principle.
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  CallbackSink* sink = g.Add<CallbackSink>(
      "slow", [](const Tuple&, int) { BurnMicros(2000.0); });
  ASSERT_TRUE(g.Connect(src, sink).ok());
  RateSource::Options opt;
  opt.phases = {{200, 2000.0}};  // target 2000/s, consumer allows ~500/s
  opt.record_rate_timeline = true;
  opt.bucket_seconds = 0.1;
  RateSource driver(src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  auto timeline = driver.TakeRateTimeline();
  ASSERT_FALSE(timeline.empty());
  double peak = 0;
  for (const auto& [t, rate] : timeline) peak = std::max(peak, rate);
  EXPECT_LT(peak, 1500.0) << "achieved rate must fall below the schedule";
}

TEST(RateSourceTest, GeneratorReceivesIndexAndTimestamp) {
  SourceRig rig;
  RateSource::Options opt;
  opt.phases = {{5, 0.0}};
  RateSource driver(rig.src, opt,
                    [](int64_t index, AppTime ts, Rng*) {
                      return Tuple({Value(index)}, ts);
                    });
  driver.Run();
  auto results = rig.sink->TakeResults();
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].IntAt(0), i);
  }
}

}  // namespace
}  // namespace flexstream

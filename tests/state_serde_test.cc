// Durable state serialization (DESIGN.md §16): every StateSnapshot
// producer's EncodeState/DecodeState pair must round-trip *byte-exactly* —
// encode(decode(encode(snapshot))) == encode(snapshot) — and fail cleanly
// (a Status, never UB) on truncated or garbage bytes. Byte-exactness is
// what makes durable checkpoints deterministic: hash-map state is emitted
// in sorted key order, join sides in arrival order, doubles as IEEE-754
// bit patterns that are never re-folded.
//
// Runs under the `check-durability` CMake target (ctest -R "StateSerde").

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/count_window_aggregate.h"
#include "operators/distinct.h"
#include "operators/latency_sink.h"
#include "operators/multiway_join.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/symmetric_nl_join.h"
#include "operators/tumbling_aggregate.h"
#include "recovery/state_snapshot.h"
#include "tuple/tuple.h"
#include "util/clock.h"

namespace flexstream {
namespace {

/// Encode -> decode -> encode must reproduce the first byte string
/// exactly, and a decoded snapshot must be restorable. Returns the
/// canonical bytes for further checks.
std::string ExpectByteExactRoundTrip(StatefulOperator* op) {
  OperatorSnapshot snap = op->SnapshotState();
  std::string bytes;
  Status encoded = op->EncodeState(snap, &bytes);
  EXPECT_TRUE(encoded.ok()) << encoded.message();

  Result<OperatorSnapshot> decoded = op->DecodeState(bytes);
  EXPECT_TRUE(decoded.ok()) << decoded.status().message();
  if (!decoded.ok()) return bytes;

  std::string bytes2;
  Status reencoded = op->EncodeState(*decoded, &bytes2);
  EXPECT_TRUE(reencoded.ok()) << reencoded.message();
  EXPECT_EQ(bytes, bytes2) << "encode(decode(bytes)) != bytes";

  op->RestoreState(*decoded);
  return bytes;
}

/// Every strict prefix of a valid encoding must decode to a clean error;
/// so must garbage.
void ExpectRejectsCorruption(StatefulOperator* op, const std::string& bytes) {
  for (size_t len : {size_t{0}, bytes.size() / 3, bytes.size() - 1}) {
    if (len >= bytes.size()) continue;
    Result<OperatorSnapshot> truncated =
        op->DecodeState(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(truncated.ok()) << "accepted truncation to " << len;
  }
  Result<OperatorSnapshot> garbage = op->DecodeState("not a snapshot");
  EXPECT_FALSE(garbage.ok());
}

TEST(StateSerdeTest, SymmetricHashJoinByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("l");
  Source* right = qb.AddSource("r");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", 10'000);
  qb.CollectSink(join, "sink");

  // Multiple keys per side, repeated keys, interleaved arrival.
  left->Push(Tuple::OfInt(1, 10));
  right->Push(Tuple::OfInt(2, 11));
  left->Push(Tuple::OfInt(2, 12));
  left->Push(Tuple::OfInt(1, 13));
  right->Push(Tuple::OfInt(1, 14));

  const std::string bytes = ExpectByteExactRoundTrip(join);
  EXPECT_FALSE(bytes.empty());
  ExpectRejectsCorruption(join, bytes);
}

TEST(StateSerdeTest, SymmetricHashJoinEmptyStateRoundTrips) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("l");
  Source* right = qb.AddSource("r");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", 10'000);
  qb.CollectSink(join, "sink");
  ExpectByteExactRoundTrip(join);
}

TEST(StateSerdeTest, MultiwayJoinByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* a = qb.AddSource("a");
  Source* b = qb.AddSource("b");
  Source* c = qb.AddSource("c");
  MultiwayJoin* join = qb.MJoin({a, b, c}, "mjoin", 10'000, {0, 0, 0});
  qb.CollectSink(join, "sink");

  a->Push(Tuple::OfInt(1, 10));
  b->Push(Tuple::OfInt(1, 11));
  c->Push(Tuple::OfInt(2, 12));
  a->Push(Tuple::OfInt(2, 13));

  const std::string bytes = ExpectByteExactRoundTrip(join);
  ExpectRejectsCorruption(join, bytes);
}

TEST(StateSerdeTest, WindowedAggregateByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  WindowedAggregate::Options options;
  options.kind = AggregateKind::kMin;  // exercises the min/max multiset
  options.group_attr = 0;
  options.window_micros = 10'000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", options);
  qb.CollectSink(agg, "sink");

  for (int i = 0; i < 8; ++i) src->Push(Tuple::OfInt(i % 3, i + 1));

  const std::string bytes = ExpectByteExactRoundTrip(agg);
  ExpectRejectsCorruption(agg, bytes);
}

TEST(StateSerdeTest, TumblingAggregateByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  TumblingAggregate::Options options;
  options.kind = AggregateKind::kAvg;
  options.group_attr = 0;
  options.window_micros = 1'000;
  TumblingAggregate* agg = qb.Tumbling(src, "tumbling", options);
  qb.CollectSink(agg, "sink");

  // Stay inside one open window so the groups hold partial state.
  for (int i = 0; i < 6; ++i) src->Push(Tuple::OfInt(i % 2, 100 + i));

  const std::string bytes = ExpectByteExactRoundTrip(agg);
  ExpectRejectsCorruption(agg, bytes);
}

TEST(StateSerdeTest, CountWindowAggregateByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CountWindowAggregate::Options options;
  options.kind = AggregateKind::kMax;
  options.window_rows = 4;
  CountWindowAggregate* agg = qb.CountWindow(src, "cw", options);
  qb.CollectSink(agg, "sink");

  for (int i = 0; i < 7; ++i) src->Push(Tuple::OfInt(10 - i, i + 1));

  const std::string bytes = ExpectByteExactRoundTrip(agg);
  ExpectRejectsCorruption(agg, bytes);
}

TEST(StateSerdeTest, SymmetricNlJoinByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("l");
  Source* right = qb.AddSource("r");
  SymmetricNlJoin* join = qb.NlJoin(
      left, right, "nljoin", 10'000,
      [](const Tuple& l, const Tuple& r) { return l.values() == r.values(); });
  qb.CollectSink(join, "sink");

  left->Push(Tuple::OfInt(1, 10));
  right->Push(Tuple::OfInt(1, 11));
  left->Push(Tuple::OfInt(3, 12));

  const std::string bytes = ExpectByteExactRoundTrip(join);
  ExpectRejectsCorruption(join, bytes);
}

TEST(StateSerdeTest, DistinctByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  Distinct* dedup = qb.Dedup(src, "dedup", 10'000);
  qb.CollectSink(dedup, "sink");

  for (int i = 0; i < 6; ++i) src->Push(Tuple::OfInt(i % 3, i + 1));

  const std::string bytes = ExpectByteExactRoundTrip(dedup);
  ExpectRejectsCorruption(dedup, bytes);
}

TEST(StateSerdeTest, CountingSinkByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CountingSink* sink = qb.CountSink(src, "count");

  for (int i = 0; i < 5; ++i) src->Push(Tuple::OfInt(i, i + 1));

  const std::string bytes = ExpectByteExactRoundTrip(sink);
  ExpectRejectsCorruption(sink, bytes);
  EXPECT_EQ(sink->count(), 5);  // restore kept the count
}

TEST(StateSerdeTest, CollectingSinkByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CollectingSink* sink = qb.CollectSink(src, "collect");

  for (int i = 0; i < 5; ++i) src->Push(Tuple::OfInt(i, i + 1));

  const std::string bytes = ExpectByteExactRoundTrip(sink);
  ExpectRejectsCorruption(sink, bytes);
  EXPECT_EQ(sink->size(), 5u);
}

TEST(StateSerdeTest, LatencySinkByteExact) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  LatencySink* sink = qb.Latency(src, "lat", /*offset_attr=*/0, Now(),
                                 /*phase_attr=*/1);
  for (int i = 0; i < 6; ++i) {
    src->Push(Tuple({Value(int64_t{0}), Value(int64_t{i % 2})}, i + 1));
  }
  ASSERT_EQ(sink->count(), 6);

  const std::string bytes = ExpectByteExactRoundTrip(sink);
  ExpectRejectsCorruption(sink, bytes);
  EXPECT_EQ(sink->count(), 6);
}

// Restored-from-bytes state must be behaviorally identical, not just
// byte-identical: a decoded join joins exactly like the original.
TEST(StateSerdeTest, DecodedJoinStateBehavesIdentically) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("l");
  Source* right = qb.AddSource("r");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", 10'000);
  CollectingSink* sink = qb.CollectSink(join, "sink");

  left->Push(Tuple::OfInt(1, 10));
  left->Push(Tuple::OfInt(2, 11));

  OperatorSnapshot snap = join->SnapshotState();
  std::string bytes;
  ASSERT_TRUE(join->EncodeState(snap, &bytes).ok());

  // Disturb the state, then restore from the *decoded* bytes.
  right->Push(Tuple::OfInt(1, 12));
  Result<OperatorSnapshot> decoded = join->DecodeState(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  join->RestoreState(*decoded);
  sink->TakeResults();

  // The decoded state holds left {1, 2} and an empty right side: a right
  // push of key 2 joins exactly once.
  right->Push(Tuple::OfInt(2, 13));
  EXPECT_EQ(sink->TakeResults().size(), 1u);
}

}  // namespace
}  // namespace flexstream

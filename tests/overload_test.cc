// Bounded-queue overload policies (QueueOp::SetBound) and their engine
// wiring: kBlock backpressure with the consumer-side space wakeup, timed
// overrun, both shed policies with exact drop accounting, and the
// end-to-end invariant dropped + delivered == fed on an overloaded HMTS
// configuration.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "queue/queue_op.h"
#include "stats/report.h"
#include "test_util.h"
#include "util/clock.h"

namespace flexstream {
namespace {

using testutil::QueueRig;

// Satellite regression: a producer parked on a full kBlock queue must be
// woken by the consumer's drain (NotifySpaceFreed), including on the SPSC
// ring + spillover path. A tiny ring forces spillover traffic while the
// bound is what actually stops the producer.
TEST(OverloadTest, BlockedProducerWokenByConsumerDrain) {
  QueueRig rig(/*ring_capacity=*/2);
  rig.queue->SetSingleProducer(true);
  rig.queue->SetBound(4, OverloadPolicy::kBlock, std::chrono::seconds(30));

  constexpr int kFeed = 12;
  std::atomic<bool> fed{false};
  std::thread producer([&] {
    for (int i = 0; i < kFeed; ++i) {
      rig.src->Push(Tuple::OfInt(i, i));
    }
    rig.src->Close(kFeed);
    fed.store(true, std::memory_order_release);
  });

  // The producer must hit the bound and park: 4 queued, the 5th waiting.
  const TimePoint park_deadline = Now() + std::chrono::seconds(10);
  while (rig.queue->block_waits() == 0 && Now() < park_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(rig.queue->block_waits(), 1);
  EXPECT_FALSE(fed.load(std::memory_order_acquire));
  EXPECT_EQ(rig.queue->Size(), 4u);

  // Drain in small batches; every freed slot must wake the producer again
  // (if the wakeup were lost, the producer would sit out its full 30s
  // timeout and this loop would never see new elements).
  size_t drained = 0;
  const TimePoint drain_deadline = Now() + std::chrono::seconds(20);
  while (!rig.queue->Exhausted() && Now() < drain_deadline) {
    const size_t got = rig.queue->DrainBatch(3);
    drained += got;
    if (got == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  producer.join();

  EXPECT_TRUE(fed.load(std::memory_order_acquire));
  EXPECT_TRUE(rig.queue->Exhausted());
  EXPECT_EQ(drained, static_cast<size_t>(kFeed));
  ASSERT_EQ(rig.sink->size(), static_cast<size_t>(kFeed));
  EXPECT_EQ(rig.queue->dropped(), 0);
  EXPECT_EQ(rig.queue->block_timeouts(), 0);
  // FIFO must survive the park/wake cycles.
  const std::vector<Tuple> results = rig.sink->Results();
  for (int i = 0; i < kFeed; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].IntAt(0), i);
  }
}

// A kBlock wait that expires overruns the bound (counted) instead of
// dropping or deadlocking: with nobody draining, every blocked push still
// lands in the queue.
TEST(OverloadTest, BlockTimeoutOverrunsBound) {
  QueueRig rig;
  rig.queue->SetBound(2, OverloadPolicy::kBlock,
                      std::chrono::milliseconds(20));

  for (int i = 0; i < 5; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(5);

  EXPECT_EQ(rig.queue->Size(), 5u);
  EXPECT_EQ(rig.queue->dropped(), 0);
  EXPECT_EQ(rig.queue->block_waits(), 3);
  EXPECT_EQ(rig.queue->block_timeouts(), 3);

  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(16);
  EXPECT_EQ(rig.sink->size(), 5u);
}

// kShedNewest drops the incoming element: the oldest `bound` elements
// survive, and EOS still propagates.
TEST(OverloadTest, ShedNewestDropsIncoming) {
  QueueRig rig;
  rig.queue->SetBound(3, OverloadPolicy::kShedNewest);

  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(10);

  EXPECT_EQ(rig.queue->Size(), 3u);
  EXPECT_EQ(rig.queue->dropped_newest(), 7);
  EXPECT_EQ(rig.queue->dropped_oldest(), 0);

  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(16);
  const std::vector<Tuple> results = rig.sink->Results();
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].IntAt(0), i);
  }
}

// kShedOldest drops from the front to admit the newcomer — and forces the
// MPSC path, since only the consumer may touch the SPSC ring's head.
TEST(OverloadTest, ShedOldestKeepsNewest) {
  QueueRig rig;
  rig.queue->SetSingleProducer(true);
  rig.queue->SetBound(3, OverloadPolicy::kShedOldest);
  EXPECT_FALSE(rig.queue->single_producer());

  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(10);

  EXPECT_EQ(rig.queue->Size(), 3u);
  EXPECT_EQ(rig.queue->dropped_oldest(), 7);
  EXPECT_EQ(rig.queue->dropped_newest(), 0);

  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(16);
  const std::vector<Tuple> results = rig.sink->Results();
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].IntAt(0), 7 + i);
  }
}

// EOS is exempt from shedding: even a full queue accepts and forwards it.
TEST(OverloadTest, EosNeverShed) {
  QueueRig rig;
  rig.queue->SetBound(2, OverloadPolicy::kShedNewest);
  for (int i = 0; i < 6; ++i) rig.src->Push(Tuple::OfInt(i, i));
  rig.src->Close(6);
  EXPECT_TRUE(rig.queue->InputClosed());
  while (!rig.queue->Exhausted()) rig.queue->DrainBatch(16);
  EXPECT_EQ(rig.sink->size(), 2u);
}

// -- End-to-end overload accounting (two-partition HMTS) -------------------
//
// Two independent pass-through chains (selectivity 1, deliberately slow
// consumers) overload their bounded queues. Because nothing filters or
// duplicates, every fed element is either delivered to a sink or counted
// in exactly one queue's drop counters: dropped + delivered == fed, to the
// element.

struct OverloadRunResult {
  int64_t fed = 0;
  int64_t delivered = 0;
  int64_t dropped = 0;
  int64_t block_waits = 0;
  size_t partitions = 0;
  size_t bounded_queues = 0;
};

OverloadRunResult RunHmtsOverload(OverloadPolicy policy) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  auto identity = [](const Tuple& t) { return t; };
  Source* src_a = qb.AddSource("src_a");
  MapOp* slow_a = qb.Map(src_a, "slow_a", identity);
  slow_a->SetSimulatedCostMicros(15.0);
  CollectingSink* sink_a = qb.CollectSink(slow_a, "sink_a");
  Source* src_b = qb.AddSource("src_b");
  MapOp* slow_b = qb.Map(src_b, "slow_b", identity);
  slow_b->SetSimulatedCostMicros(15.0);
  CollectingSink* sink_b = qb.CollectSink(slow_b, "sink_b");

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.queue_max_elements = 8;
  options.overload_policy = policy;
  EXPECT_TRUE(engine.Configure(options).ok());
  EXPECT_TRUE(engine.Start().ok());

  OverloadRunResult r;
  r.partitions = engine.hmts()->Partitions().size();
  constexpr int kFeedPerSource = 1000;
  for (int i = 0; i < kFeedPerSource; ++i) {
    src_a->Push(Tuple::OfInt(i, i));
    src_b->Push(Tuple::OfInt(i, i));
  }
  src_a->Close(kFeedPerSource);
  src_b->Close(kFeedPerSource);
  r.fed = 2 * kFeedPerSource;

  EXPECT_TRUE(engine.WaitUntilFinishedFor(std::chrono::seconds(60)));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();

  r.delivered = static_cast<int64_t>(sink_a->size() + sink_b->size());
  r.dropped = engine.DroppedElements();
  for (QueueOp* q : engine.queues()) {
    r.block_waits += q->block_waits();
    if (q->bounded()) ++r.bounded_queues;
  }
  // Satellite: the resilience report covers exactly the bounded queues.
  EXPECT_EQ(BuildResilienceTable(graph).row_count(), r.bounded_queues);
  return r;
}

TEST(OverloadTest, HmtsShedNewestAccountsExactly) {
  const OverloadRunResult r = RunHmtsOverload(OverloadPolicy::kShedNewest);
  EXPECT_GE(r.partitions, 2u);
  EXPECT_GE(r.bounded_queues, 2u);
  EXPECT_GT(r.dropped, 0);
  EXPECT_EQ(r.dropped + r.delivered, r.fed);
}

TEST(OverloadTest, HmtsShedOldestAccountsExactly) {
  const OverloadRunResult r = RunHmtsOverload(OverloadPolicy::kShedOldest);
  EXPECT_GE(r.partitions, 2u);
  EXPECT_GT(r.dropped, 0);
  EXPECT_EQ(r.dropped + r.delivered, r.fed);
}

TEST(OverloadTest, HmtsBlockDeliversEverything) {
  const OverloadRunResult r = RunHmtsOverload(OverloadPolicy::kBlock);
  EXPECT_GE(r.partitions, 2u);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.delivered, r.fed);
  // The feeders must actually have been backpressured for this to test
  // anything: bound 8 against a 15us/element consumer guarantees parks.
  EXPECT_GT(r.block_waits, 0);
}

}  // namespace
}  // namespace flexstream

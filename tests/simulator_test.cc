// The virtual-time scheduling simulator.

#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "api/query_builder.h"

namespace flexstream {
namespace {

// src -> a (cost, sel) -> b (cost, sel) -> sink.
struct ChainFixture {
  QueryGraph graph;
  Source* src;
  Node* a;
  Node* b;
  CountingSink* sink;

  ChainFixture(double cost_a_us, double sel_a, double cost_b_us,
               double sel_b) {
    QueryBuilder qb(&graph);
    src = qb.AddSource("src");
    a = qb.Select(src, "a", [](const Tuple&) { return true; });
    a->SetCostMicros(cost_a_us);
    a->SetSelectivity(sel_a);
    b = qb.Select(a, "b", [](const Tuple&) { return true; });
    b->SetCostMicros(cost_b_us);
    b->SetSelectivity(sel_b);
    sink = qb.CountSink(b, "sink");
    sink->SetCostMicros(0.0);
    sink->SetSelectivity(1.0);
  }

  // One thread executing everything as a single VO (DI).
  std::vector<SimThread> OnePartition() const {
    return {SimThread{SimVo{a, b, sink}}};
  }
  // One thread per operator (OTS).
  std::vector<SimThread> PerOperator() const {
    return {SimThread{SimVo{a}}, SimThread{SimVo{b}},
            SimThread{SimVo{sink}}};
  }
};

TEST(SimulatorTest, CountsResultsThroughSelectivities) {
  ChainFixture fx(1.0, 0.5, 1.0, 0.5);
  SimOptions opt;
  auto result = Simulate(fx.graph, {{fx.src, {{1000, 1000.0}}}},
                         fx.OnePartition(), opt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->results, 250) << "0.5 * 0.5 of 1000";
}

TEST(SimulatorTest, CompletionBoundedByEmissionWhenUnderloaded) {
  // 1000 elements at 1000/s = 1 s of emission; work is 2 us/element.
  ChainFixture fx(1.0, 1.0, 1.0, 1.0);
  auto result = Simulate(fx.graph, {{fx.src, {{1000, 1000.0}}}},
                         fx.OnePartition(), SimOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->completion_time, 1.0, 0.01);
  EXPECT_LE(result->max_queued, 2);
}

TEST(SimulatorTest, CompletionBoundedByWorkWhenOverloaded) {
  // 1000 instantaneous elements x 1 ms = 1 s of work on one CPU.
  ChainFixture fx(1000.0, 1.0, 0.0, 1.0);
  auto result = Simulate(fx.graph, {{fx.src, {{1000, 0.0}}}},
                         fx.OnePartition(), SimOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->completion_time, 1.0, 0.01);
  EXPECT_EQ(result->max_queued, 1000) << "the burst sits in the queue";
}

TEST(SimulatorTest, TwoCpusHalveOverloadedCompletion) {
  // Two independent 0.5 s pipelines: 1 CPU => 1.0 s, 2 CPUs => ~0.5 s.
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src_a = qb.AddSource("src_a");
  Node* op_a = qb.Select(src_a, "op_a", [](const Tuple&) { return true; });
  op_a->SetCostMicros(1000.0);
  op_a->SetSelectivity(1.0);
  CountingSink* sink_a = qb.CountSink(op_a, "sink_a");
  sink_a->SetCostMicros(0.0);
  Source* src_b = qb.AddSource("src_b");
  Node* op_b = qb.Select(src_b, "op_b", [](const Tuple&) { return true; });
  op_b->SetCostMicros(1000.0);
  op_b->SetSelectivity(1.0);
  CountingSink* sink_b = qb.CountSink(op_b, "sink_b");
  sink_b->SetCostMicros(0.0);
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedules = {
      {src_a, {{500, 0.0}}}, {src_b, {{500, 0.0}}}};
  const std::vector<SimThread> partitions = {
      SimThread{SimVo{op_a, sink_a}}, SimThread{SimVo{op_b, sink_b}}};
  SimOptions one_cpu;
  one_cpu.cpus = 1;
  SimOptions two_cpus;
  two_cpus.cpus = 2;
  auto serial = Simulate(g, schedules, partitions, one_cpu);
  auto parallel = Simulate(g, schedules, partitions, two_cpus);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_NEAR(serial->completion_time, 1.0, 0.02);
  EXPECT_NEAR(parallel->completion_time, 0.5, 0.02);
}

TEST(SimulatorTest, DeterministicAcrossRuns) {
  ChainFixture fx(3.0, 0.7, 5.0, 0.9);
  const auto schedules =
      std::unordered_map<const Node*, std::vector<SimPhase>>{
          {fx.src, {{500, 0.0}, {500, 2000.0}}}};
  auto r1 = Simulate(fx.graph, schedules, fx.PerOperator(), SimOptions());
  auto r2 = Simulate(fx.graph, schedules, fx.PerOperator(), SimOptions());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->completion_time, r2->completion_time);
  EXPECT_EQ(r1->results, r2->results);
  EXPECT_EQ(r1->max_queued, r2->max_queued);
  ASSERT_EQ(r1->samples.size(), r2->samples.size());
}

TEST(SimulatorTest, PartitioningDoesNotChangeResults) {
  ChainFixture fx(2.0, 0.6, 4.0, 0.5);
  const auto schedules =
      std::unordered_map<const Node*, std::vector<SimPhase>>{
          {fx.src, {{2000, 5000.0}}}};
  auto merged =
      Simulate(fx.graph, schedules, fx.OnePartition(), SimOptions());
  auto split =
      Simulate(fx.graph, schedules, fx.PerOperator(), SimOptions());
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(merged->results, split->results);
}

TEST(SimulatorTest, ChainStrategyDrainsCheapBeforeExpensive) {
  // Expensive op in the same partition as a cheap selective chain: with
  // the Chain strategy the cheap queue is preferred, so peak memory stays
  // below FIFO's... both see the same totals; compare sample profiles.
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src = qb.AddSource("src");
  Node* cheap = qb.Select(src, "cheap", [](const Tuple&) { return true; });
  cheap->SetCostMicros(1.0);
  cheap->SetSelectivity(0.01);
  CountingSink* cheap_sink = qb.CountSink(cheap, "cheap_sink");
  cheap_sink->SetCostMicros(0.0);
  Source* src2 = qb.AddSource("src2");
  Node* heavy = qb.Select(src2, "heavy", [](const Tuple&) { return true; });
  heavy->SetCostMicros(10'000.0);
  heavy->SetSelectivity(1.0);
  CountingSink* heavy_sink = qb.CountSink(heavy, "heavy_sink");
  heavy_sink->SetCostMicros(0.0);
  const std::unordered_map<const Node*, std::vector<SimPhase>> schedules = {
      {src, {{10'000, 20'000.0}}}, {src2, {{50, 100.0}}}};
  // One thread, two VOs: the thread's strategy arbitrates two queues.
  const std::vector<SimThread> partitions = {SimThread{
      SimVo{cheap, cheap_sink}, SimVo{heavy, heavy_sink}}};
  SimOptions fifo;
  fifo.strategy = StrategyKind::kFifo;
  fifo.sample_interval = 0.05;
  SimOptions chain;
  chain.strategy = StrategyKind::kChain;
  chain.sample_interval = 0.05;
  auto fifo_result = Simulate(g, schedules, partitions, fifo);
  auto chain_result = Simulate(g, schedules, partitions, chain);
  ASSERT_TRUE(fifo_result.ok());
  ASSERT_TRUE(chain_result.ok());
  // Average queued memory under Chain must not exceed FIFO's (Chain
  // prioritizes the high-release cheap chain).
  auto average = [](const SimResult& r) {
    double sum = 0;
    for (const auto& s : r.samples) sum += static_cast<double>(s.queued);
    return r.samples.empty() ? 0.0
                             : sum / static_cast<double>(r.samples.size());
  };
  EXPECT_LE(average(*chain_result), average(*fifo_result) + 1.0);
  EXPECT_EQ(fifo_result->results, chain_result->results);
}

TEST(SimulatorTest, RejectsUncoveredNodes) {
  ChainFixture fx(1, 1, 1, 1);
  auto result = Simulate(fx.graph, {{fx.src, {{10, 0.0}}}},
                         {SimThread{SimVo{fx.a, fx.b}}},  // sink missing
                         SimOptions());
  EXPECT_FALSE(result.ok());
}

TEST(SimulatorTest, RejectsSourceInPartition) {
  ChainFixture fx(1, 1, 1, 1);
  auto result =
      Simulate(fx.graph, {{fx.src, {{10, 0.0}}}},
               {SimThread{SimVo{fx.src, fx.a, fx.b, fx.sink}}},
               SimOptions());
  EXPECT_FALSE(result.ok());
}

TEST(SimulatorTest, SamplesCoverTheRun) {
  ChainFixture fx(100.0, 1.0, 0.0, 1.0);
  SimOptions opt;
  opt.sample_interval = 0.1;
  auto result = Simulate(fx.graph, {{fx.src, {{5000, 10'000.0}}}},
                         fx.OnePartition(), opt);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->samples.size(), 5u);
  EXPECT_EQ(result->samples.front().time, 0.0);
  for (size_t i = 1; i < result->samples.size(); ++i) {
    EXPECT_GT(result->samples[i].time, result->samples[i - 1].time);
    EXPECT_GE(result->samples[i].results,
              result->samples[i - 1].results);
  }
}

TEST(SimulatorTest, PartitionBusyTimesSumToWork) {
  ChainFixture fx(10.0, 1.0, 30.0, 1.0);
  auto result = Simulate(fx.graph, {{fx.src, {{1000, 0.0}}}},
                         fx.PerOperator(), SimOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->partition_busy.size(), 3u);
  EXPECT_NEAR(result->partition_busy[0], 0.01, 1e-6);  // 1000 x 10 us
  EXPECT_NEAR(result->partition_busy[1], 0.03, 1e-6);  // 1000 x 30 us
}

}  // namespace
}  // namespace flexstream

// Histogram hardening (DESIGN.md §14): merge associativity, interpolation
// at exact bucket boundaries, tail percentiles against known synthetic
// distributions, empty/single-sample edges, and the shared overflow bucket
// at the nine-decade cap. The log-bucketed layout has ~4–8% relative
// resolution, so distribution tests assert relative error, not equality.

#include "util/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/random.h"

namespace flexstream {
namespace {

// -- Edges -------------------------------------------------------------------

TEST(HistogramEdgeTest, EmptyReportsZeroEverywhere) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(0.999), 0.0);
  EXPECT_EQ(h.Percentile(1.0), 0.0);
}

TEST(HistogramEdgeTest, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Add(137.0);
  EXPECT_EQ(h.count(), 1);
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 137.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), 137.0);
  EXPECT_DOUBLE_EQ(h.max(), 137.0);
  EXPECT_DOUBLE_EQ(h.mean(), 137.0);
}

TEST(HistogramEdgeTest, ResetRestoresEmptyState) {
  Histogram h;
  h.Add(5.0);
  h.Add(500.0);
  h.Reset();
  EXPECT_EQ(h, Histogram());
}

// -- Equality ----------------------------------------------------------------

TEST(HistogramEqualityTest, SameSamplesCompareEqual) {
  Histogram a;
  Histogram b;
  for (double v : {1.0, 10.0, 100.0, 12345.0}) {
    a.Add(v);
    b.Add(v);
  }
  EXPECT_EQ(a, b);
}

TEST(HistogramEqualityTest, DifferingMinMaxBreakEqualityWithinOneBucket) {
  // 100.0 and 101.0 land in the same log bucket, but min/max/sum differ —
  // structural equality must see that.
  Histogram a;
  Histogram b;
  a.Add(100.0);
  b.Add(101.0);
  EXPECT_NE(a, b);
}

// -- Merge -------------------------------------------------------------------

TEST(HistogramMergeTest, MergeIsAssociativeAndEqualsCombinedAdds) {
  // Integer-valued samples keep the running double sums exact (well below
  // 2^53), so associativity can assert full structural equality — sum_
  // included — instead of tolerating fp reassociation noise.
  Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.push_back(static_cast<double>(rng.UniformInt(1, 2'000'000)));
  }

  Histogram all;
  Histogram parts[3];
  for (size_t i = 0; i < samples.size(); ++i) {
    all.Add(samples[i]);
    parts[i % 3].Add(samples[i]);
  }

  // (a + b) + c
  Histogram left = parts[0];
  left.Merge(parts[1]);
  left.Merge(parts[2]);
  // a + (b + c)
  Histogram right = parts[1];
  right.Merge(parts[2]);
  Histogram right_assoc = parts[0];
  right_assoc.Merge(right);

  EXPECT_EQ(left, all);
  EXPECT_EQ(right_assoc, all);
  EXPECT_EQ(left, right_assoc);
  EXPECT_DOUBLE_EQ(left.Percentile(0.999), all.Percentile(0.999));
}

TEST(HistogramMergeTest, MergeWithEmptyIsIdentityBothWays) {
  Histogram h;
  h.Add(3.0);
  h.Add(777.0);
  const Histogram before = h;
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h, before);
  empty.Merge(h);
  EXPECT_EQ(empty, before);
}

// -- Percentile interpolation ------------------------------------------------

TEST(HistogramPercentileTest, ExactBucketBoundaryCollapsesToTheValue) {
  // 10.0 is an exact bucket lower bound (decade boundary). With min == max
  // the interpolation window clamps to a point: every quantile is exact.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(10.0);
  for (double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 10.0) << "q=" << q;
  }
}

TEST(HistogramPercentileTest, InterpolationStaysWithinSampleRange) {
  Histogram h;
  h.Add(100.0);
  h.Add(140.0);  // same decade, a few buckets apart
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.Percentile(q), 100.0) << "q=" << q;
    EXPECT_LE(h.Percentile(q), 140.0) << "q=" << q;
  }
}

TEST(HistogramPercentileTest, UniformRampTailPercentiles) {
  // 1..20000 uniformly: p(q) ~ q * 20000. Bucket resolution bounds the
  // relative error at ~1/32 of a decade (~7.5%).
  Histogram h;
  for (int i = 1; i <= 20000; ++i) h.Add(static_cast<double>(i));
  const struct {
    double q;
    double expected;
  } cases[] = {{0.50, 10000.0}, {0.95, 19000.0}, {0.99, 19800.0},
               {0.999, 19980.0}};
  for (const auto& c : cases) {
    const double got = h.Percentile(c.q);
    EXPECT_NEAR(got, c.expected, 0.08 * c.expected) << "q=" << c.q;
  }
  // The top quantile interpolates inside the final bucket; it may sit a
  // hair under max but never above it.
  EXPECT_NEAR(h.Percentile(1.0), 20000.0, 0.001 * 20000.0);
  EXPECT_LE(h.Percentile(1.0), 20000.0);
}

TEST(HistogramPercentileTest, ExponentialTailMatchesTheory) {
  // Exponential(mean m): p999 = -ln(0.001) * m ≈ 6.9078 m. Tolerance
  // covers bucket resolution plus sampling noise at the 0.1% tail.
  Rng rng(7);
  const double mean = 1000.0;
  Histogram h;
  for (int i = 0; i < 100000; ++i) h.Add(rng.Exponential(mean));
  const double p999 = h.Percentile(0.999);
  const double expected = -std::log(0.001) * mean;
  EXPECT_NEAR(p999, expected, 0.15 * expected);
  const double p50 = h.Percentile(0.50);
  EXPECT_NEAR(p50, std::log(2.0) * mean, 0.15 * std::log(2.0) * mean);
}

// -- Overflow at the nine-decade cap ----------------------------------------

TEST(HistogramOverflowTest, ValuesAboveCapShareTheOverflowBucket) {
  // Everything above MaxTrackable() collapses into one bucket: the
  // histogram keeps exact count/min/max but loses resolution between
  // over-cap values — the percentile for the overflow region reports the
  // bucket's clamped lower edge, never something below the cap.
  Histogram h;
  h.Add(5e8);  // finite bucket
  h.Add(2e9);  // overflow
  h.Add(8e9);  // overflow
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min(), 5e8);
  EXPECT_DOUBLE_EQ(h.max(), 8e9);
  const double p50 = h.Percentile(0.50);
  EXPECT_GE(p50, Histogram::MaxTrackable());
  EXPECT_LE(p50, 8e9);
}

TEST(HistogramOverflowTest, CapIsTheLastFiniteBoundary) {
  // A value at the cap and one far above it are distinguishable only via
  // min/max — their bucket counts collide in the overflow bucket, so two
  // such histograms merged in either order stay equal (associativity holds
  // through the overflow path too).
  Histogram a;
  a.Add(2e9);
  a.Add(9e9);
  Histogram b;
  b.Add(9e9);
  b.Add(2e9);
  EXPECT_EQ(a, b);
}

TEST(HistogramDeltaTest, DeltaSinceIsolatesTheNewWindow) {
  // The SLO controller snapshots the cumulative sink histogram each
  // control interval and diffs against the previous snapshot: the delta's
  // percentiles must reflect only the elements added in between.
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.Add(10.0);
  Histogram later = earlier;
  for (int i = 0; i < 100; ++i) later.Add(10'000.0);

  const Histogram delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.count(), 100);
  // Every element of the window was slow; the cumulative histogram's p50
  // would still say "fast" (200 elements, half at 10us).
  EXPECT_GE(delta.Percentile(0.50), 5'000.0);
  EXPECT_LE(later.Percentile(0.50), 20.0);
}

TEST(HistogramDeltaTest, DeltaSinceSelfIsEmpty) {
  Histogram h;
  for (int i = 1; i <= 50; ++i) h.Add(static_cast<double>(i));
  const Histogram delta = h.DeltaSince(h);
  EXPECT_EQ(delta.count(), 0);
}

TEST(HistogramDeltaTest, DeltaSinceClampsOnReset) {
  // A sink whose histogram was reset between snapshots yields a "later"
  // with smaller bucket counts; the per-bucket subtraction clamps at zero
  // instead of going negative.
  Histogram earlier;
  for (int i = 0; i < 100; ++i) earlier.Add(100.0);
  Histogram later;
  for (int i = 0; i < 30; ++i) later.Add(100.0);
  const Histogram delta = later.DeltaSince(earlier);
  EXPECT_EQ(delta.count(), 0);
}

TEST(HistogramSummaryTest, SummariesIncludeP999) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NE(h.Summary().find("p999="), std::string::npos);
  EXPECT_NE(h.PercentilesSummary().find("p999="), std::string::npos);
  EXPECT_NE(h.PercentilesSummary().find("p50="), std::string::npos);
}

}  // namespace
}  // namespace flexstream

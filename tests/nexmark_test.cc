// NEXMark workload tests (DESIGN.md §14): generator determinism (same seed
// -> byte-identical streams, RateSource-driven == pregenerated), domain
// validity, and exact result-count oracles for the canonical queries run on
// a queue-free (synchronous DI) graph.

#include "workload/nexmark.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "api/query_builder.h"
#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "util/random.h"
#include "workload/rate_source.h"

namespace flexstream {
namespace nexmark {
namespace {

TEST(NexmarkGeneratorTest, SameSeedIsByteIdentical) {
  const NexmarkConfig config;
  const std::vector<Tuple> a = GenerateBids(config, /*seed=*/42, 3000);
  const std::vector<Tuple> b = GenerateBids(config, /*seed=*/42, 3000);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "bid " << i;
    EXPECT_EQ(a[i].timestamp(), b[i].timestamp()) << "bid " << i;
  }
  const std::vector<Tuple> other = GenerateBids(config, /*seed=*/43, 3000);
  EXPECT_NE(a, other) << "different seeds must give different streams";
}

TEST(NexmarkGeneratorTest, AuctionStreamIsDeterministicToo) {
  const NexmarkConfig config;
  const std::vector<Tuple> a = GenerateAuctions(config, 7, 500, 10);
  const std::vector<Tuple> b = GenerateAuctions(config, 7, 500, 10);
  EXPECT_EQ(a, b);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp(), static_cast<AppTime>(10 * (i + 1)));
  }
}

TEST(NexmarkGeneratorTest, BidAttributesStayInDomain) {
  NexmarkConfig config;
  config.num_auctions = 50;
  config.num_persons = 20;
  config.max_price = 100;
  const std::vector<Tuple> bids = GenerateBids(config, 11, 5000);
  for (const Tuple& bid : bids) {
    EXPECT_GE(bid.IntAt(kBidAuction), 1);
    EXPECT_LE(bid.IntAt(kBidAuction), config.num_auctions);
    EXPECT_GE(bid.IntAt(kBidBidder), 1);
    EXPECT_LE(bid.IntAt(kBidBidder), config.num_persons);
    EXPECT_GE(bid.IntAt(kBidPrice), 1);
    EXPECT_LE(bid.IntAt(kBidPrice), config.max_price);
    EXPECT_EQ(bid.arity(), kBidArity);
  }
}

TEST(NexmarkGeneratorTest, RateSourceDrivenStreamMatchesPregenerated) {
  // Constant pacing at 1e6/s advances app time by exactly 1 us per element
  // and draws nothing from the rng, so a RateSource running BidGenerator
  // from seed s replays GenerateBids(s, n, /*spacing=*/1) byte for byte.
  const NexmarkConfig config;
  const int64_t n = 2000;
  const uint64_t seed = 42;
  const std::vector<Tuple> pregen = GenerateBids(config, seed, n);

  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("bids");
  CollectingSink* out = qb.CollectSink(src, "out");
  RateSource::Options options;
  options.phases = {{n, 1e6}};
  options.pacing = RateSource::Pacing::kConstant;
  options.seed = seed;
  options.time_scale = 1e6;
  RateSource driver(src, options, BidGenerator(config));
  driver.Run();

  const std::vector<Tuple> live = out->TakeResults();
  ASSERT_EQ(live.size(), pregen.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], pregen[i]) << "bid " << i;
    EXPECT_EQ(live[i].timestamp(), pregen[i].timestamp()) << "bid " << i;
  }
}

TEST(NexmarkGeneratorTest, ZipfSkewConcentratesBidsOnHotAuctions) {
  NexmarkConfig config;
  config.num_auctions = 100;
  config.auction_zipf = 0.9;
  const std::vector<Tuple> bids = GenerateBids(config, 5, 20000);
  std::vector<int64_t> per_auction(config.num_auctions, 0);
  for (const Tuple& bid : bids) ++per_auction[bid.IntAt(kBidAuction) - 1];
  std::sort(per_auction.rbegin(), per_auction.rend());
  int64_t top10 = 0;
  for (int i = 0; i < 10; ++i) top10 += per_auction[i];
  // Under Zipf(0.9) the top 10% of auctions draw far more than their
  // uniform share (10%) of the bids.
  EXPECT_GT(top10, static_cast<int64_t>(bids.size() / 4));
}

// -- Query oracles -----------------------------------------------------------

TEST(NexmarkQueryTest, FilterSurvivorsMatchThePredicateExactly) {
  const NexmarkConfig config;
  const std::vector<Tuple> bids = GenerateBids(config, 42, 4000);
  int64_t expected = 0;
  for (const Tuple& bid : bids) {
    if (bid.IntAt(kBidAuction) % config.filter_modulus == 0) ++expected;
  }
  ASSERT_GT(expected, 0);

  QueryGraph graph;
  QueryHandle q = BuildFilterQuery(&graph, config, {});
  for (const Tuple& bid : bids) q.bids->Push(bid);
  q.bids->Close(static_cast<AppTime>(bids.size()) + 1);
  EXPECT_EQ(q.results->count(), expected);

  // The measured selectivity is exactly survivors / n — what the simulator
  // agreement harness stamps onto the filter node.
  const double s = MeasuredFilterSelectivity(config, bids);
  EXPECT_DOUBLE_EQ(s, static_cast<double>(expected) /
                          static_cast<double>(bids.size()));
}

TEST(NexmarkQueryTest, CurrencyConversionPreservesCardinality) {
  const NexmarkConfig config;
  const std::vector<Tuple> bids = GenerateBids(config, 42, 3000);
  QueryGraph graph;
  QueryHandle q = BuildCurrencyQuery(&graph, config, {});
  for (const Tuple& bid : bids) q.bids->Push(bid);
  q.bids->Close(static_cast<AppTime>(bids.size()) + 1);
  EXPECT_EQ(q.results->count(), static_cast<int64_t>(bids.size()));
}

TEST(NexmarkQueryTest, HotItemsEmitsOneRowPerWindowAndAuction) {
  const NexmarkConfig config;  // hot_window_micros = 10'000
  const std::vector<Tuple> bids = GenerateBids(config, 42, 30000);
  std::set<std::pair<AppTime, int64_t>> expected;
  for (const Tuple& bid : bids) {
    expected.emplace(bid.timestamp() / config.hot_window_micros,
                     bid.IntAt(kBidAuction));
  }
  ASSERT_GT(expected.size(), 1u) << "stream must span several windows";

  QueryGraph graph;
  QueryHandle q = BuildHotItemsQuery(&graph, config, {});
  for (const Tuple& bid : bids) q.bids->Push(bid);
  q.bids->Close(static_cast<AppTime>(bids.size()) + 1);
  EXPECT_EQ(q.results->count(), static_cast<int64_t>(expected.size()));
}

TEST(NexmarkQueryTest, AuctionJoinMatchesBruteForceWindowedJoin) {
  NexmarkConfig config;
  config.num_auctions = 100;
  const AppTime kWindow = 500;
  const std::vector<Tuple> bids = GenerateBids(config, 42, 2000);
  const std::vector<Tuple> auctions =
      GenerateAuctions(config, 8, 200, /*spacing_micros=*/10);

  // Oracle: symmetric sliding window — every (auction, bid) pair with equal
  // auction id and |ts difference| <= window joins exactly once.
  int64_t expected = 0;
  for (const Tuple& a : auctions) {
    for (const Tuple& b : bids) {
      if (a.IntAt(kAuctionId) == b.IntAt(kBidAuction) &&
          std::llabs(a.timestamp() - b.timestamp()) <= kWindow) {
        ++expected;
      }
    }
  }
  ASSERT_GT(expected, 0);

  QueryGraph graph;
  QueryHandle q = BuildAuctionJoinQuery(&graph, config, {}, kWindow);
  // Interleave the two streams in global timestamp order, as a scheduler
  // delivering timestamp-monotone streams would.
  size_t ai = 0;
  size_t bi = 0;
  while (ai < auctions.size() || bi < bids.size()) {
    const bool take_auction =
        bi == bids.size() ||
        (ai < auctions.size() &&
         auctions[ai].timestamp() <= bids[bi].timestamp());
    if (take_auction) {
      q.auctions->Push(auctions[ai++]);
    } else {
      q.bids->Push(bids[bi++]);
    }
  }
  const AppTime end = static_cast<AppTime>(
      std::max<int64_t>(bids.size(), 10 * auctions.size())) + 1;
  q.auctions->Close(end);
  q.bids->Close(end);
  EXPECT_EQ(q.results->count(), expected);
}

}  // namespace
}  // namespace nexmark
}  // namespace flexstream

// Semantics of the unary operators: Selection, Projection, Map, Union.

#include <gtest/gtest.h>

#include "graph/query_graph.h"
#include "operators/map_op.h"
#include "operators/projection.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"

namespace flexstream {
namespace {

struct Rig {
  QueryGraph graph;
  Source* src = nullptr;
  CollectingSink* sink = nullptr;

  // Builds src -> op -> sink.
  template <typename T, typename... Args>
  T* Wire(Args&&... args) {
    src = graph.Add<Source>("src");
    T* op = graph.Add<T>(std::forward<Args>(args)...);
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, op).ok());
    EXPECT_TRUE(graph.Connect(op, sink).ok());
    return op;
  }
};

TEST(SelectionTest, FiltersByPredicate) {
  Rig rig;
  rig.Wire<Selection>("f",
                      [](const Tuple& t) { return t.IntAt(0) % 3 == 0; });
  for (int i = 0; i < 10; ++i) rig.src->Push(Tuple::OfInt(i, i));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].IntAt(0), 0);
  EXPECT_EQ(results[3].IntAt(0), 9);
}

TEST(SelectionTest, PreservesTupleContentAndTimestamp) {
  Rig rig;
  rig.Wire<Selection>("f", [](const Tuple&) { return true; });
  rig.src->Push(Tuple({Value(1), Value("a")}, 42));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], Tuple({Value(1), Value("a")}, 42));
}

TEST(SelectionTest, IntAttrLessThanHelper) {
  auto pred = Selection::IntAttrLessThan(100);
  EXPECT_TRUE(pred(Tuple::OfInt(99)));
  EXPECT_FALSE(pred(Tuple::OfInt(100)));
}

TEST(SelectionTest, SimulatedCostBurnsCpu) {
  Rig rig;
  Selection* sel = rig.Wire<Selection>(
      "f", [](const Tuple&) { return true; }, /*cost=*/500.0);
  EXPECT_EQ(sel->simulated_cost_micros(), 500.0);
  Stopwatch sw;
  for (int i = 0; i < 20; ++i) rig.src->Push(Tuple::OfInt(i));
  EXPECT_GE(sw.ElapsedMicros(), 5000);
}

TEST(ProjectionTest, KeepsSelectedAttributes) {
  Rig rig;
  rig.Wire<Projection>("p", std::vector<size_t>{2, 0});
  rig.src->Push(Tuple({Value(10), Value(20), Value(30)}, 5));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], Tuple({Value(30), Value(10)}, 5));
}

TEST(ProjectionTest, EmptyAttrListIsIdentity) {
  Rig rig;
  rig.Wire<Projection>("p", std::vector<size_t>{});
  Tuple in({Value(1), Value(2)}, 9);
  rig.src->Push(in);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], in);
}

TEST(ProjectionTest, SelectivityIsOne) {
  Rig rig;
  Projection* p = rig.Wire<Projection>("p", std::vector<size_t>{0});
  for (int i = 0; i < 5; ++i) rig.src->Push(Tuple::OfInt(i));
  EXPECT_NEAR(p->Selectivity(), 1.0, 1e-9);
}

TEST(MapOpTest, TransformsTuples) {
  Rig rig;
  rig.Wire<MapOp>("m", [](const Tuple& t) {
    return Tuple::OfInt(t.IntAt(0) * 2, t.timestamp());
  });
  rig.src->Push(Tuple::OfInt(21, 7));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].IntAt(0), 42);
  EXPECT_EQ(results[0].timestamp(), 7);
}

TEST(UnionOpTest, MergesStreamsPreservingPerInputOrder) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  ASSERT_TRUE(g.Connect(u, sink).ok());
  a->Push(Tuple::OfInt(1, 1));
  b->Push(Tuple::OfInt(100, 1));
  a->Push(Tuple::OfInt(2, 2));
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), 3u);
  // Per-input order: 1 before 2.
  std::vector<int64_t> a_values;
  for (const auto& t : results) {
    if (t.IntAt(0) < 100) a_values.push_back(t.IntAt(0));
  }
  EXPECT_EQ(a_values, (std::vector<int64_t>{1, 2}));
}

TEST(UnionOpTest, BagSemanticsKeepDuplicates) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  ASSERT_TRUE(g.Connect(u, sink).ok());
  a->Push(Tuple::OfInt(7, 1));
  b->Push(Tuple::OfInt(7, 1));
  EXPECT_EQ(sink->size(), 2u);
}

TEST(ChainOfSelectionsTest, ConjunctionSemantics) {
  // A chain of selections behaves as one virtual operator computing the
  // conjunction (Section 3.1).
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Selection* s1 =
      g.Add<Selection>("s1", [](const Tuple& t) { return t.IntAt(0) > 2; });
  Selection* s2 =
      g.Add<Selection>("s2", [](const Tuple& t) { return t.IntAt(0) < 8; });
  Selection* s3 = g.Add<Selection>(
      "s3", [](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, s1).ok());
  ASSERT_TRUE(g.Connect(s1, s2).ok());
  ASSERT_TRUE(g.Connect(s2, s3).ok());
  ASSERT_TRUE(g.Connect(s3, sink).ok());
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i));
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].IntAt(0), 4);
  EXPECT_EQ(results[1].IntAt(0), 6);
}

}  // namespace
}  // namespace flexstream

#include "tuple/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "tuple/value.h"

namespace flexstream {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value i(int64_t{42});
  Value d(2.5);
  Value s("abc");
  EXPECT_TRUE(i.is_int64());
  EXPECT_TRUE(d.is_double());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt64(), 42);
  EXPECT_EQ(d.AsDouble(), 2.5);
  EXPECT_EQ(s.AsString(), "abc");
}

TEST(ValueTest, IntLiteralConstructor) {
  Value v(7);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, DefaultIsIntZero) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, ToDoubleCoercion) {
  EXPECT_EQ(Value(3).ToDouble(), 3.0);
  EXPECT_EQ(Value(1.5).ToDouble(), 1.5);
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value(1.0)) << "types are distinct";
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(5).Hash(), Value(5).Hash());
  EXPECT_EQ(Value("xy").Hash(), Value("xy").Hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value(1));
  set.insert(Value(1));
  set.insert(Value("1"));
  EXPECT_EQ(set.size(), 2u);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(12).ToString(), "12");
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(TupleTest, DataTupleBasics) {
  Tuple t({Value(1), Value(2.0), Value("x")}, 99);
  EXPECT_TRUE(t.is_data());
  EXPECT_FALSE(t.is_eos());
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.timestamp(), 99);
  EXPECT_EQ(t.IntAt(0), 1);
  EXPECT_EQ(t.DoubleAt(1), 2.0);
  EXPECT_EQ(t.StringAt(2), "x");
}

TEST(TupleTest, EosCarriesOnlyTimestamp) {
  Tuple eos = Tuple::EndOfStream(123);
  EXPECT_TRUE(eos.is_eos());
  EXPECT_EQ(eos.timestamp(), 123);
  EXPECT_EQ(eos.arity(), 0u);
}

TEST(TupleTest, OfIntOfDouble) {
  EXPECT_EQ(Tuple::OfInt(5, 1).IntAt(0), 5);
  EXPECT_EQ(Tuple::OfDouble(2.5, 1).DoubleAt(0), 2.5);
}

TEST(TupleTest, ConcatJoinsAttributesAndMaxTimestamp) {
  Tuple l({Value(1), Value(2)}, 10);
  Tuple r({Value(3)}, 20);
  Tuple c = Tuple::Concat(l, r);
  EXPECT_EQ(c.arity(), 3u);
  EXPECT_EQ(c.IntAt(0), 1);
  EXPECT_EQ(c.IntAt(2), 3);
  EXPECT_EQ(c.timestamp(), 20);
}

TEST(TupleTest, Append) {
  Tuple t = Tuple::OfInt(1);
  t.Append(Value(2));
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.IntAt(1), 2);
}

TEST(TupleTest, EqualityIncludesKindTimestampValues) {
  EXPECT_EQ(Tuple::OfInt(1, 5), Tuple::OfInt(1, 5));
  EXPECT_NE(Tuple::OfInt(1, 5), Tuple::OfInt(1, 6));
  EXPECT_NE(Tuple::OfInt(1, 5), Tuple::OfInt(2, 5));
  EXPECT_NE(Tuple::OfInt(0, 5), Tuple::EndOfStream(5));
  EXPECT_EQ(Tuple::EndOfStream(5), Tuple::EndOfStream(5));
}

TEST(TupleTest, OrderingByTimestampThenValues) {
  EXPECT_LT(Tuple::OfInt(9, 1), Tuple::OfInt(0, 2));
  EXPECT_LT(Tuple::OfInt(1, 5), Tuple::OfInt(2, 5));
}

TEST(TupleTest, ToStringFormats) {
  EXPECT_EQ(Tuple({Value(1), Value("a")}, 7).ToString(), "(1, a)@7");
  EXPECT_EQ(Tuple::EndOfStream(3).ToString(), "<EOS@3>");
}

}  // namespace
}  // namespace flexstream

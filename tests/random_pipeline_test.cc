// Property test: randomly generated *executable* query graphs produce
// identical result multisets under every scheduling architecture.
//
// Graph shape is random (selections, maps, unions, routers, fan-out,
// several sources and sinks); operator logic is deterministic; outputs
// are compared as sorted multisets per sink, which is the
// schedule-independent notion of equality for merged streams.

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "test_util.h"
#include "util/random.h"

namespace flexstream {
namespace {

struct RandomPipeline {
  QueryGraph graph;
  std::vector<Source*> sources;
  std::vector<CollectingSink*> sinks;

  // Deterministic construction for a seed.
  explicit RandomPipeline(uint64_t seed) {
    Rng rng(seed);
    QueryBuilder qb(&graph);
    const int num_sources = 1 + static_cast<int>(rng.NextU64(3));
    std::vector<Node*> frontier;
    for (int s = 0; s < num_sources; ++s) {
      Source* src = qb.AddSource("src" + std::to_string(s));
      src->SetInterarrivalMicros(rng.UniformDouble(20.0, 200.0));
      sources.push_back(src);
      frontier.push_back(src);
    }
    const int num_ops = 4 + static_cast<int>(rng.NextU64(12));
    for (int i = 0; i < num_ops; ++i) {
      Node* upstream = frontier[static_cast<size_t>(
          rng.NextU64(static_cast<uint64_t>(frontier.size())))];
      Node* op = nullptr;
      switch (rng.NextU64(4)) {
        case 0: {
          const int64_t threshold = rng.UniformInt(100, 900);
          op = qb.Select(upstream, "sel" + std::to_string(i),
                         Selection::IntAttrLessThan(threshold));
          op->SetSelectivity(static_cast<double>(threshold) / 1000.0);
          break;
        }
        case 1: {
          const int64_t delta = rng.UniformInt(-5, 5);
          op = qb.Map(upstream, "map" + std::to_string(i),
                      [delta](const Tuple& t) {
                        return Tuple::OfInt(t.IntAt(0) + delta,
                                            t.timestamp());
                      });
          break;
        }
        case 2: {
          // Union with another random frontier node (may be the same).
          Node* other = frontier[static_cast<size_t>(
              rng.NextU64(static_cast<uint64_t>(frontier.size())))];
          std::vector<Node*> ins{upstream};
          if (other != upstream) ins.push_back(other);
          op = qb.Union(ins, "union" + std::to_string(i));
          break;
        }
        case 3:
        default: {
          op = qb.Select(upstream, "mod" + std::to_string(i),
                         [](const Tuple& t) {
                           return t.IntAt(0) % 3 != 0;
                         });
          op->SetSelectivity(0.66);
          break;
        }
      }
      op->SetCostMicros(rng.UniformDouble(0.1, 5.0));
      frontier.push_back(op);
    }
    // Every frontier node that has no consumer yet feeds a sink (so no
    // dangling operators).
    int sink_id = 0;
    for (Node* node : std::vector<Node*>(frontier)) {
      if (node->fan_out() == 0) {
        sinks.push_back(qb.CollectSink(
            node, "sink" + std::to_string(sink_id++)));
      }
    }
  }

  void Feed(uint64_t seed) {
    Rng rng(seed * 31 + 7);
    for (int i = 0; i < 800; ++i) {
      Source* src = sources[static_cast<size_t>(
          rng.NextU64(static_cast<uint64_t>(sources.size())))];
      src->Push(Tuple::OfInt(rng.UniformInt(0, 999), i));
    }
    for (Source* src : sources) src->Close(800);
  }
};

std::vector<std::vector<Tuple>> RunAllSinks(uint64_t seed,
                                            ExecutionMode mode,
                                            StrategyKind strategy) {
  RandomPipeline pipeline(seed);
  StreamEngine engine(&pipeline.graph);
  EngineOptions opt;
  opt.mode = mode;
  opt.strategy = strategy;
  EXPECT_TRUE(engine.Configure(opt).ok())
      << "seed " << seed << " mode " << ExecutionModeToString(mode);
  EXPECT_TRUE(engine.Start().ok());
  pipeline.Feed(seed);
  engine.WaitUntilFinished();
  std::vector<std::vector<Tuple>> results;
  for (CollectingSink* sink : pipeline.sinks) {
    results.push_back(testutil::Sorted(sink->TakeResults()));
  }
  return results;
}

class RandomPipelineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPipelineTest, AllModesAndStrategiesAgree) {
  const uint64_t seed = GetParam();
  const auto reference =
      RunAllSinks(seed, ExecutionMode::kSourceDriven, StrategyKind::kFifo);
  size_t total = 0;
  for (const auto& r : reference) total += r.size();
  EXPECT_GT(total, 0u) << "degenerate pipeline for seed " << seed;
  const struct {
    ExecutionMode mode;
    StrategyKind strategy;
  } configs[] = {
      {ExecutionMode::kDirect, StrategyKind::kFifo},
      {ExecutionMode::kGts, StrategyKind::kFifo},
      {ExecutionMode::kGts, StrategyKind::kChain},
      {ExecutionMode::kGts, StrategyKind::kRoundRobin},
      {ExecutionMode::kOts, StrategyKind::kFifo},
      {ExecutionMode::kHmts, StrategyKind::kFifo},
      {ExecutionMode::kHmts, StrategyKind::kChain},
  };
  for (const auto& config : configs) {
    EXPECT_EQ(RunAllSinks(seed, config.mode, config.strategy), reference)
        << "seed " << seed << " mode "
        << ExecutionModeToString(config.mode) << " strategy "
        << StrategyKindToString(config.strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPipelineTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace flexstream

// Sliding window and windowed aggregation semantics, checked against
// brute-force oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/window.h"
#include "util/random.h"

namespace flexstream {
namespace {

TEST(SlidingWindowTest, AddAndExpire) {
  SlidingWindow w(100);
  w.Add(Tuple::OfInt(1, 10));
  w.Add(Tuple::OfInt(2, 50));
  w.Add(Tuple::OfInt(3, 120));
  EXPECT_EQ(w.size(), 3u);
  std::vector<int64_t> expired;
  w.ExpireBefore(w.WatermarkFor(105),
                 [&](const Tuple& t) { expired.push_back(t.IntAt(0)); });
  EXPECT_TRUE(expired.empty()) << "10 >= 105-100 stays";
  w.ExpireBefore(w.WatermarkFor(155),
                 [&](const Tuple& t) { expired.push_back(t.IntAt(0)); });
  EXPECT_EQ(expired, (std::vector<int64_t>{1, 2}))
      << "10 and 50 fall below watermark 55";
  EXPECT_EQ(w.size(), 1u);
}

TEST(SlidingWindowTest, ExpireOnEmptyIsNoop) {
  SlidingWindow w(10);
  w.ExpireBefore(1000);
  EXPECT_TRUE(w.empty());
}

TEST(SlidingWindowTest, ZeroDurationKeepsOnlyCurrentInstant) {
  SlidingWindow w(0);
  w.Add(Tuple::OfInt(1, 5));
  w.ExpireBefore(w.WatermarkFor(6));
  EXPECT_TRUE(w.empty());
}

TEST(AggregateKindTest, Names) {
  EXPECT_STREQ(AggregateKindToString(AggregateKind::kCount), "count");
  EXPECT_STREQ(AggregateKindToString(AggregateKind::kAvg), "avg");
}

struct AggRig {
  QueryGraph graph;
  Source* src;
  WindowedAggregate* agg;
  CollectingSink* sink;

  explicit AggRig(WindowedAggregate::Options options) {
    src = graph.Add<Source>("src");
    agg = graph.Add<WindowedAggregate>("agg", options);
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, agg).ok());
    EXPECT_TRUE(graph.Connect(agg, sink).ok());
  }
};

TEST(WindowedAggregateTest, CountOverWindow) {
  WindowedAggregate::Options opt;
  opt.kind = AggregateKind::kCount;
  opt.window_micros = 100;
  AggRig rig(opt);
  rig.src->Push(Tuple::OfInt(1, 0));
  rig.src->Push(Tuple::OfInt(2, 50));
  rig.src->Push(Tuple::OfInt(3, 200));  // first two expired
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].DoubleAt(0), 1.0);
  EXPECT_EQ(results[1].DoubleAt(0), 2.0);
  EXPECT_EQ(results[2].DoubleAt(0), 1.0);
}

TEST(WindowedAggregateTest, SumAndAvg) {
  WindowedAggregate::Options opt;
  opt.kind = AggregateKind::kSum;
  opt.window_micros = 1000;
  AggRig rig(opt);
  rig.src->Push(Tuple::OfInt(10, 1));
  rig.src->Push(Tuple::OfInt(30, 2));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1].DoubleAt(0), 40.0);

  WindowedAggregate::Options avg_opt;
  avg_opt.kind = AggregateKind::kAvg;
  avg_opt.window_micros = 1000;
  AggRig avg_rig(avg_opt);
  avg_rig.src->Push(Tuple::OfInt(10, 1));
  avg_rig.src->Push(Tuple::OfInt(30, 2));
  auto avg_results = avg_rig.sink->TakeResults();
  EXPECT_EQ(avg_results[1].DoubleAt(0), 20.0);
}

TEST(WindowedAggregateTest, MinMaxSurviveExpiration) {
  WindowedAggregate::Options opt;
  opt.kind = AggregateKind::kMax;
  opt.window_micros = 100;
  AggRig rig(opt);
  rig.src->Push(Tuple::OfInt(50, 0));
  rig.src->Push(Tuple::OfInt(10, 50));
  rig.src->Push(Tuple::OfInt(20, 160));  // 50 expired, max of {10,20}=20
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].DoubleAt(0), 50.0);
  EXPECT_EQ(results[1].DoubleAt(0), 50.0);
  EXPECT_EQ(results[2].DoubleAt(0), 20.0);
}

TEST(WindowedAggregateTest, GroupByEmitsPerGroup) {
  WindowedAggregate::Options opt;
  opt.kind = AggregateKind::kCount;
  opt.group_attr = 0;
  opt.window_micros = 1000;
  AggRig rig(opt);
  rig.src->Push(Tuple({Value("a")}, 1));
  rig.src->Push(Tuple({Value("b")}, 2));
  rig.src->Push(Tuple({Value("a")}, 3));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].StringAt(0), "a");
  EXPECT_EQ(results[0].DoubleAt(1), 1.0);
  EXPECT_EQ(results[1].StringAt(0), "b");
  EXPECT_EQ(results[1].DoubleAt(1), 1.0);
  EXPECT_EQ(results[2].StringAt(0), "a");
  EXPECT_EQ(results[2].DoubleAt(1), 2.0);
}

TEST(WindowedAggregateTest, ResetClearsState) {
  WindowedAggregate::Options opt;
  opt.kind = AggregateKind::kCount;
  opt.window_micros = 1000;
  AggRig rig(opt);
  rig.src->Push(Tuple::OfInt(1, 1));
  EXPECT_EQ(rig.agg->window_size(), 1u);
  rig.graph.ResetAll();
  EXPECT_EQ(rig.agg->window_size(), 0u);
  rig.src->Push(Tuple::OfInt(1, 1));
  auto results = rig.sink->TakeResults();
  // First result after reset counts only the new element.
  EXPECT_EQ(results.back().DoubleAt(0), 1.0);
}

// Property test: randomized streams against a brute-force oracle, swept
// over aggregate kinds and window lengths.
struct AggCase {
  AggregateKind kind;
  AppTime window;
  uint64_t seed;
};

class AggregateOracleTest : public ::testing::TestWithParam<AggCase> {};

double Oracle(AggregateKind kind, const std::deque<Tuple>& window,
              size_t value_attr) {
  double sum = 0;
  double mn = 0;
  double mx = 0;
  bool first = true;
  for (const Tuple& t : window) {
    const double v = kind == AggregateKind::kCount
                         ? 0.0
                         : t.at(value_attr).ToDouble();
    sum += v;
    if (first || v < mn) mn = v;
    if (first || v > mx) mx = v;
    first = false;
  }
  switch (kind) {
    case AggregateKind::kCount:
      return static_cast<double>(window.size());
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kAvg:
      return window.empty() ? 0.0
                            : sum / static_cast<double>(window.size());
    case AggregateKind::kMin:
      return mn;
    case AggregateKind::kMax:
      return mx;
  }
  return 0;
}

TEST_P(AggregateOracleTest, MatchesBruteForce) {
  const AggCase& c = GetParam();
  WindowedAggregate::Options opt;
  opt.kind = c.kind;
  opt.value_attr = 0;
  opt.window_micros = c.window;
  AggRig rig(opt);

  Rng rng(c.seed);
  AppTime ts = 0;
  std::deque<Tuple> oracle_window;
  std::vector<double> expected;
  for (int i = 0; i < 500; ++i) {
    ts += rng.UniformInt(0, 40);
    Tuple t = Tuple::OfInt(rng.UniformInt(-100, 100), ts);
    // Oracle: expire strictly-older-than watermark, then add.
    while (!oracle_window.empty() &&
           oracle_window.front().timestamp() < ts - c.window) {
      oracle_window.pop_front();
    }
    oracle_window.push_back(t);
    expected.push_back(Oracle(c.kind, oracle_window, 0));
    rig.src->Push(t);
  }
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(results[i].DoubleAt(0), expected[i], 1e-9)
        << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateOracleTest,
    ::testing::Values(AggCase{AggregateKind::kCount, 100, 1},
                      AggCase{AggregateKind::kCount, 1000, 2},
                      AggCase{AggregateKind::kSum, 100, 3},
                      AggCase{AggregateKind::kSum, 1000, 4},
                      AggCase{AggregateKind::kAvg, 500, 5},
                      AggCase{AggregateKind::kMin, 100, 6},
                      AggCase{AggregateKind::kMin, 1000, 7},
                      AggCase{AggregateKind::kMax, 100, 8},
                      AggCase{AggregateKind::kMax, 1000, 9}));

}  // namespace
}  // namespace flexstream

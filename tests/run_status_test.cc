// RunStatus under contention: many threads report failures concurrently;
// exactly one primary failure must be recorded, every report counted, and
// the origin/first() pair must stay mutually consistent. Run under TSan
// (build-tsan) to prove the first-failure election is race-free.
//
// Runs under the `check-recovery` CMake target (ctest -R "RunStatus").

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "operators/operator.h"
#include "util/run_status.h"
#include "util/status.h"

namespace flexstream {
namespace {

TEST(RunStatusContentionTest, ConcurrentReportsElectExactlyOnePrimary) {
  constexpr int kThreads = 16;
  constexpr int kReportsPerThread = 200;
  RunStatus status;
  std::atomic<int> go{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&status, &go, t] {
      go.fetch_add(1, std::memory_order_relaxed);
      while (go.load(std::memory_order_relaxed) < kThreads) {
      }
      for (int i = 0; i < kReportsPerThread; ++i) {
        status.Report(Status::Internal("boom from t" + std::to_string(t)),
                      "op" + std::to_string(t));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_TRUE(status.failed());
  EXPECT_EQ(status.report_count(),
            static_cast<int64_t>(kThreads) * kReportsPerThread);
  // Exactly one primary: origin names a real reporter and first() is the
  // matching status, not a blend of two reports.
  const std::string origin = status.origin();
  ASSERT_FALSE(origin.empty());
  EXPECT_EQ(origin.rfind("op", 0), 0u);
  const std::string winner = origin.substr(2);
  EXPECT_NE(status.first().message().find("operator '" + origin + "'"),
            std::string::npos);
  EXPECT_NE(status.first().message().find("boom from t" + winner),
            std::string::npos);
}

// The same election through the Operator::Fail path: concurrent failing
// operators all become poisoned, but the run records one primary.
class FailingOp : public Operator {
 public:
  explicit FailingOp(std::string name)
      : Operator(Kind::kOperator, std::move(name), 1) {}
  void FailNow() { Fail(Status::Internal("induced failure")); }

 protected:
  void Process(const Tuple& /*tuple*/, int /*port*/) override {}
};

TEST(RunStatusContentionTest, ConcurrentOperatorFailuresKeepOnePrimary) {
  constexpr int kOps = 12;
  RunStatus status;
  std::vector<std::unique_ptr<FailingOp>> ops;
  for (int i = 0; i < kOps; ++i) {
    ops.push_back(std::make_unique<FailingOp>("fail" + std::to_string(i)));
    ops.back()->SetRunStatus(&status);
  }

  std::atomic<int> go{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kOps; ++i) {
    threads.emplace_back([&go, op = ops[i].get()] {
      go.fetch_add(1, std::memory_order_relaxed);
      while (go.load(std::memory_order_relaxed) < kOps) {
      }
      op->FailNow();
      op->FailNow();  // idempotent: the second call must not re-report
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_TRUE(status.failed());
  EXPECT_EQ(status.report_count(), kOps);  // one report per operator
  for (const auto& op : ops) EXPECT_TRUE(op->failed());
  // The recorded primary is one of the operators, verbatim.
  EXPECT_EQ(status.origin().rfind("fail", 0), 0u);
}

}  // namespace
}  // namespace flexstream

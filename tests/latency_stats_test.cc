// Tail-latency truth (DESIGN.md §14): the emit-offset stamp is an
// ordinary trailing attribute, so it must survive every transport the
// engine has — the batch path and the sharded ordered merge — byte for
// byte; the LatencySink must measure on the batch path without unbundling;
// and the stats layer (BuildLatencyTable / MergedLatencyHistogram /
// DiagnosticSnapshot) must surface per-sink and engine-wide percentiles.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "api/query_builder.h"
#include "api/shard.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/latency_sink.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "stats/report.h"
#include "util/clock.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

/// Two-attribute tuples {payload, stamp} with a recognizable stamp value.
std::vector<Tuple> StampedFeed(int64_t n) {
  std::vector<Tuple> feed;
  feed.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    feed.push_back(Tuple({Value(i), Value(1'000'000 + i)}, i + 1));
  }
  return feed;
}

/// Runs feed through src -> select(all) -> collect under `options`,
/// optionally sharding the selection, and returns the collected output.
std::vector<Tuple> RunStampedPipeline(const std::vector<Tuple>& feed,
                                      EngineOptions options, size_t shards) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Selection* sel = qb.Select(src, "sel", [](const Tuple&) { return true; });
  CollectingSink* out = qb.CollectSink(sel, "out");
  if (shards > 1) {
    ShardOptions so;
    so.shards = shards;
    so.ordered = true;
    EXPECT_TRUE(ShardOperator(&graph, sel, so).status().ok());
  }
  StreamEngine engine(&graph);
  EXPECT_TRUE(engine.Configure(options).ok());
  EXPECT_TRUE(engine.Start().ok());
  for (const Tuple& t : feed) src->Push(t);
  src->Close(static_cast<AppTime>(feed.size()) + 1);
  EXPECT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok());
  return out->TakeResults();
}

TEST(LatencyStampTest, StampSurvivesBatch64Unchanged) {
  const std::vector<Tuple> feed = StampedFeed(500);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.emit_batch_size = 64;
  const std::vector<Tuple> got = RunStampedPipeline(feed, options, 1);
  ASSERT_EQ(got.size(), feed.size());
  for (size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], feed[i]) << "batched element " << i << " mutated";
  }
}

TEST(ShardStampTest, StampSurvivesFourShardOrderedMergeUnchanged) {
  const std::vector<Tuple> feed = StampedFeed(600);
  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  const std::vector<Tuple> got = RunStampedPipeline(feed, options, 4);
  ASSERT_EQ(got.size(), feed.size());
  // Ordered merge restores the exact split-point sequence, so the output
  // is the input — order, payload, and stamp attribute all unchanged.
  for (size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], feed[i]) << "sharded element " << i << " mutated";
  }
}

TEST(ShardStampTest, StampSurvivesShardsAndBatchesCombined) {
  const std::vector<Tuple> feed = StampedFeed(600);
  EngineOptions options;
  options.mode = ExecutionMode::kOts;
  options.emit_batch_size = 32;
  const std::vector<Tuple> got = RunStampedPipeline(feed, options, 4);
  ASSERT_EQ(got.size(), feed.size());
  for (size_t i = 0; i < feed.size(); ++i) {
    EXPECT_EQ(got[i], feed[i]) << "element " << i << " mutated";
  }
}

TEST(LatencySinkBatchTest, BatchPathCountsEveryElementOnce) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  const TimePoint epoch = Now();
  LatencySink* sink = qb.Latency(src, "lat", /*offset_attr=*/1, epoch);
  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.emit_batch_size = 64;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  const int64_t n = 300;
  for (int64_t i = 0; i < n; ++i) {
    src->Push(
        Tuple({Value(i), Value(ToMicros(Now() - epoch))}, i + 1));
  }
  src->Close(n + 1);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  ASSERT_TRUE(engine.RunResult().ok());
  const Histogram h = sink->SnapshotHistogram();
  EXPECT_EQ(h.count(), n);
  EXPECT_GE(h.min(), 0.0) << "latency against a just-taken stamp";
  EXPECT_EQ(sink->count(), n);
}

TEST(LatencySinkPhaseTest, PhaseHistogramsPartitionTheStream) {
  // Queue-free graph: Push executes the sink synchronously (DI).
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  const TimePoint epoch = Now();
  LatencySink* sink = qb.Latency(src, "lat", /*offset_attr=*/2, epoch,
                                 /*phase_attr=*/1);
  const int64_t per_phase[] = {5, 7, 11};
  int64_t pushed = 0;
  for (int64_t phase = 0; phase < 3; ++phase) {
    for (int64_t i = 0; i < per_phase[phase]; ++i, ++pushed) {
      src->Push(Tuple({Value(pushed), Value(phase),
                       Value(ToMicros(Now() - epoch))},
                      pushed + 1));
    }
  }
  EXPECT_EQ(sink->count(), pushed);
  const Histogram total = sink->SnapshotHistogram();
  std::map<int64_t, Histogram> phases = sink->TakePhaseHistograms();
  ASSERT_EQ(phases.size(), 3u);
  int64_t phase_total = 0;
  for (int64_t phase = 0; phase < 3; ++phase) {
    ASSERT_TRUE(phases.count(phase)) << "phase " << phase;
    EXPECT_EQ(phases[phase].count(), per_phase[phase]);
    phase_total += phases[phase].count();
  }
  EXPECT_EQ(phase_total, total.count());
  // Take drained the phase map but not the total histogram.
  EXPECT_TRUE(sink->TakePhaseHistograms().empty());
  EXPECT_EQ(sink->count(), pushed);
}

TEST(LatencySinkSnapshotTest, SnapshotRestoreRewindsTheHistograms) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  const TimePoint epoch = Now();
  LatencySink* sink = qb.Latency(src, "lat", /*offset_attr=*/2, epoch,
                                 /*phase_attr=*/1);
  auto push = [&](int64_t i, int64_t phase) {
    src->Push(Tuple({Value(i), Value(phase),
                     Value(ToMicros(Now() - epoch))},
                    i + 1));
  };
  for (int64_t i = 0; i < 10; ++i) push(i, 0);
  const OperatorSnapshot snap = sink->SnapshotState();
  EXPECT_EQ(snap.element_count, 10);
  for (int64_t i = 10; i < 25; ++i) push(i, 1);
  EXPECT_EQ(sink->count(), 25);
  sink->Reset();
  EXPECT_EQ(sink->count(), 0);
  sink->RestoreState(snap);
  EXPECT_EQ(sink->count(), 10);
  std::map<int64_t, Histogram> phases = sink->TakePhaseHistograms();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].count(), 10);
}

TEST(LatencyReportTest, LatencyTableHasPerSinkAndMergedRows) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* a = qb.AddSource("a");
  Source* b = qb.AddSource("b");
  const TimePoint epoch = Now();
  qb.Latency(a, "lat_a", 1, epoch);
  qb.Latency(b, "lat_b", 1, epoch);
  for (int64_t i = 0; i < 4; ++i) {
    a->Push(Tuple({Value(i), Value(ToMicros(Now() - epoch))}, i + 1));
  }
  for (int64_t i = 0; i < 6; ++i) {
    b->Push(Tuple({Value(i), Value(ToMicros(Now() - epoch))}, i + 1));
  }
  const Table t = BuildLatencyTable(graph);
  // One row per sink plus the "(all)" merged row.
  EXPECT_EQ(t.row_count(), 3u);
  const Histogram merged = MergedLatencyHistogram(graph);
  EXPECT_EQ(merged.count(), 10);
  const std::string report = StatsReport(graph);
  EXPECT_NE(report.find("p999_us"), std::string::npos);
  EXPECT_NE(report.find("(all)"), std::string::npos);
  EXPECT_NE(report.find("lat_a"), std::string::npos);
}

TEST(LatencyReportTest, DiagnosticSnapshotShowsSinkPercentiles) {
  // GTS decouples operators but DI-couples sinks to their producer, so the
  // watchdog reports the sink's percentiles on the queue feeding that
  // producer (src -> [queue] -> sel -> lat).
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Selection* sel = qb.Select(src, "sel", [](const Tuple&) { return true; });
  const TimePoint epoch = Now();
  qb.Latency(sel, "lat", 1, epoch);
  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int64_t i = 0; i < 50; ++i) {
    src->Push(Tuple({Value(i), Value(ToMicros(Now() - epoch))}, i + 1));
  }
  src->Close(51);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  ASSERT_TRUE(engine.RunResult().ok());
  const std::string snapshot = engine.DiagnosticSnapshot();
  EXPECT_NE(snapshot.find("lat p50="), std::string::npos)
      << "watchdog snapshot missing latency summary:\n" << snapshot;
  EXPECT_NE(snapshot.find("p999="), std::string::npos);
}

}  // namespace
}  // namespace flexstream

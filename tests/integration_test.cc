// Cross-module integration scenarios: deep graphs, joins + aggregation
// pipelines under every scheduling mode, bursty backpressure, and the
// full engine + workload + placement stack together.

#include <gtest/gtest.h>

#include <algorithm>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "operators/aggregate.h"
#include "workload/rate_source.h"

namespace flexstream {
namespace {

std::vector<Tuple> Sorted(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// A two-query graph exercising join + windowed aggregation + shared
// subquery at once:
//
//   left ---> filter --+
//                       +--> SHJ --> window-count --> sink1
//   right -------------+
//                       \--> (right also feeds) filter2 --> sink2
struct ComplexFixture {
  QueryGraph graph;
  QueryBuilder qb{&graph};
  Source* left;
  Source* right;
  CollectingSink* join_sink;
  CollectingSink* agg_sink;
  CountingSink* filter_sink;

  ComplexFixture() {
    left = qb.AddSource("left");
    right = qb.AddSource("right");
    left->SetInterarrivalMicros(50.0);
    right->SetInterarrivalMicros(50.0);
    Node* filtered = qb.Select(left, "filter",
                               Selection::IntAttrLessThan(40));
    filtered->SetSelectivity(0.8);
    filtered->SetCostMicros(0.5);
    // The window covers the whole stream (app-time span ~100k): with
    // decoupled paths of different depths, the two join inputs can drift
    // arbitrarily far apart under OTS/HMTS, and expiration under such lag
    // legitimately loses matches. A full-stream window makes the join's
    // output multiset schedule-independent, which is what this test pins.
    Node* join = qb.HashJoin(filtered, right, "join", /*window=*/200'000);
    join->SetCostMicros(2.0);
    join->SetSelectivity(1.0);
    join_sink = qb.CollectSink(join, "join_sink");
    WindowedAggregate::Options agg;
    agg.kind = AggregateKind::kCount;
    agg.window_micros = 5'000;
    Node* counted = qb.Aggregate(join, "count", agg);
    counted->SetCostMicros(1.0);
    counted->SetSelectivity(1.0);
    agg_sink = qb.CollectSink(counted, "agg_sink");
    Node* f2 = qb.Select(right, "filter2",
                         [](const Tuple& t) { return t.IntAt(0) >= 25; });
    f2->SetSelectivity(0.5);
    f2->SetCostMicros(0.5);
    filter_sink = qb.CountSink(f2, "filter_sink");
  }

  void Feed() {
    Rng rng(99);
    AppTime ts = 0;
    for (int i = 0; i < 2000; ++i) {
      ts += rng.UniformInt(1, 100);
      if (rng.Bernoulli(0.5)) {
        left->Push(Tuple::OfInt(rng.UniformInt(0, 49), ts));
      } else {
        right->Push(Tuple::OfInt(rng.UniformInt(0, 49), ts));
      }
    }
    left->Close(ts + 1);
    right->Close(ts + 1);
  }
};

TEST(IntegrationTest, ComplexGraphSameResultsInAllModes) {
  // The join's output *multiset* and the filter's count are
  // schedule-independent. The windowed aggregate's individual outputs are
  // not (they depend on the interleaving of the merged join stream), but
  // their count must match the join output count (one aggregate per
  // input).
  std::vector<Tuple> reference_join;
  int64_t reference_count = -1;
  for (auto mode :
       {ExecutionMode::kSourceDriven, ExecutionMode::kDirect,
        ExecutionMode::kGts, ExecutionMode::kOts, ExecutionMode::kHmts}) {
    ComplexFixture fx;
    StreamEngine engine(&fx.graph);
    EngineOptions opt;
    opt.mode = mode;
    ASSERT_TRUE(engine.Configure(opt).ok())
        << ExecutionModeToString(mode);
    ASSERT_TRUE(engine.Start().ok());
    fx.Feed();
    engine.WaitUntilFinished();
    const auto join_results = Sorted(fx.join_sink->TakeResults());
    const auto agg_results = fx.agg_sink->TakeResults();
    EXPECT_EQ(agg_results.size(), join_results.size())
        << ExecutionModeToString(mode);
    if (reference_count < 0) {
      reference_join = join_results;
      reference_count = fx.filter_sink->count();
      EXPECT_GT(reference_join.size(), 0u);
    } else {
      EXPECT_EQ(join_results, reference_join)
          << ExecutionModeToString(mode);
      EXPECT_EQ(fx.filter_sink->count(), reference_count)
          << ExecutionModeToString(mode);
    }
  }
}

TEST(IntegrationTest, DeepChainPropagatesEverything) {
  // 64 stacked selections, all pass-through: elements and EOS must
  // traverse the whole depth in every scheduled mode.
  for (auto mode : {ExecutionMode::kGts, ExecutionMode::kOts,
                    ExecutionMode::kHmts}) {
    QueryGraph graph;
    QueryBuilder qb(&graph);
    Source* src = qb.AddSource("src");
    src->SetInterarrivalMicros(100.0);
    Node* prev = src;
    for (int i = 0; i < 64; ++i) {
      prev = qb.Select(prev, "s" + std::to_string(i),
                       [](const Tuple&) { return true; });
      prev->SetCostMicros(0.1);
      prev->SetSelectivity(1.0);
    }
    CountingSink* sink = qb.CountSink(prev, "sink");
    StreamEngine engine(&graph);
    EngineOptions opt;
    opt.mode = mode;
    ASSERT_TRUE(engine.Configure(opt).ok());
    ASSERT_TRUE(engine.Start().ok());
    for (int i = 0; i < 500; ++i) src->Push(Tuple::OfInt(i, i));
    src->Close(500);
    engine.WaitUntilFinished();
    EXPECT_EQ(sink->count(), 500) << ExecutionModeToString(mode);
  }
}

TEST(IntegrationTest, WideFanOutAllBranchesComplete) {
  // One source fanning out to 32 independent branches.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  std::vector<CountingSink*> sinks;
  for (int b = 0; b < 32; ++b) {
    Node* sel = qb.Select(src, "b" + std::to_string(b),
                          [b](const Tuple& t) { return t.IntAt(0) % 32 == b; });
    sel->SetSelectivity(1.0 / 32.0);
    sel->SetCostMicros(0.2);
    sinks.push_back(qb.CountSink(sel, "sink" + std::to_string(b)));
  }
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 3200; ++i) src->Push(Tuple::OfInt(i % 32, i));
  src->Close(3200);
  engine.WaitUntilFinished();
  for (int b = 0; b < 32; ++b) {
    EXPECT_EQ(sinks[static_cast<size_t>(b)]->count(), 100) << "branch " << b;
  }
}

TEST(IntegrationTest, BurstyRateSourceThroughEngine) {
  // Bursts and pauses through a scheduled engine; the paper's Section 6.6
  // emission pattern at miniature scale.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  Node* sel = qb.Select(src, "sel", Selection::IntAttrLessThan(500));
  sel->SetSelectivity(0.5);
  sel->SetCostMicros(1.0);
  CountingSink* sink = qb.CountSink(sel, "sink");
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  RateSource::Options ropt;
  ropt.phases = {{2000, 0.0}, {500, 5000.0}, {2000, 0.0}};
  ropt.pacing = RateSource::Pacing::kPoisson;
  ropt.seed = 3;
  RateSource driver(src, ropt, RateSource::UniformInt(0, 999));
  driver.Start();
  driver.Join();
  engine.WaitUntilFinished();
  EXPECT_EQ(driver.emitted(), 4500);
  EXPECT_GT(sink->count(), 1800);
  EXPECT_LT(sink->count(), 2700);
}

TEST(IntegrationTest, MultiwayJoinUnderEngine) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* a = qb.AddSource("a");
  Source* b = qb.AddSource("b");
  Source* c = qb.AddSource("c");
  for (Source* s : {a, b, c}) s->SetInterarrivalMicros(100.0);
  Node* mjoin = qb.MJoin({a, b, c}, "mjoin", /*window=*/1'000'000,
                         {0, 0, 0});
  CountingSink* sink = qb.CountSink(mjoin, "sink");
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kOts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 100; ++i) {
    a->Push(Tuple::OfInt(i % 10, i));
    b->Push(Tuple::OfInt(i % 10, i));
    c->Push(Tuple::OfInt(i % 10, i));
  }
  a->Close(100);
  b->Close(100);
  c->Close(100);
  engine.WaitUntilFinished();
  // Each key 0..9 appears 10x per stream => 10^3 combinations per key.
  EXPECT_EQ(sink->count(), 10 * 10 * 10 * 10);
}

TEST(IntegrationTest, EngineSurvivesManyReconfigurations) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  Node* sel = qb.Select(src, "sel", [](const Tuple&) { return true; });
  sel->SetCostMicros(0.5);
  sel->SetSelectivity(1.0);
  CountingSink* sink = qb.CountSink(sel, "sink");
  StreamEngine engine(&graph);
  EngineOptions opt;
  opt.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(opt).ok());
  ASSERT_TRUE(engine.Start().ok());
  const ExecutionMode cycle[] = {ExecutionMode::kOts, ExecutionMode::kGts,
                                 ExecutionMode::kHmts, ExecutionMode::kOts,
                                 ExecutionMode::kHmts, ExecutionMode::kGts};
  int pushed = 0;
  for (ExecutionMode mode : cycle) {
    for (int i = 0; i < 200; ++i, ++pushed) {
      src->Push(Tuple::OfInt(pushed, pushed));
    }
    EngineOptions next = engine.options();
    next.mode = mode;
    ASSERT_TRUE(engine.SwitchTo(next).ok())
        << ExecutionModeToString(mode);
  }
  src->Close(pushed);
  engine.WaitUntilFinished();
  EXPECT_EQ(sink->count(), pushed);
}

}  // namespace
}  // namespace flexstream

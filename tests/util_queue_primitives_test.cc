#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "util/spsc_ring.h"
#include "util/sync_queue.h"

namespace flexstream {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  ring.TryPop();
  EXPECT_TRUE(ring.TryPush(3));
}

TEST(SpscRingTest, WrapAroundPreservesOrder) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(round * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(ring.TryPop().value(), round * 10 + i);
    }
  }
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<int64_t> ring(1024);
  constexpr int64_t kCount = 200'000;
  int64_t sum = 0;
  std::thread consumer([&] {
    int64_t received = 0;
    while (received < kCount) {
      auto v = ring.TryPop();
      if (v) {
        sum += *v;
        ++received;
      }
    }
  });
  for (int64_t i = 1; i <= kCount;) {
    if (ring.TryPush(i)) ++i;
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SyncQueueTest, FifoOrder) {
  SyncQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_EQ(q.TryPop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SyncQueueTest, CloseRejectsPushButDrains) {
  SyncQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(SyncQueueTest, BlockingPopWakesOnPush) {
  SyncQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(99);
  });
  EXPECT_EQ(q.Pop().value(), 99);
  producer.join();
}

TEST(SyncQueueTest, BlockingPopWakesOnClose) {
  SyncQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  EXPECT_FALSE(q.Pop().has_value());
  closer.join();
}

TEST(SyncQueueTest, MultiProducerMultiConsumer) {
  SyncQueue<int> q;
  constexpr int kPerProducer = 10'000;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v) return;
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  q.Close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(),
            static_cast<int64_t>(kProducers) * kPerProducer *
                (kPerProducer + 1) / 2);
}

}  // namespace
}  // namespace flexstream

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "util/spsc_ring.h"
#include "util/sync_queue.h"

namespace flexstream {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SpscRingTest, PushPopSingleThread) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_EQ(ring.TryPop().value(), 1);
  EXPECT_EQ(ring.TryPop().value(), 2);
  EXPECT_FALSE(ring.TryPop().has_value());
}

TEST(SpscRingTest, FullRingRejectsPush) {
  SpscRing<int> ring(2);
  EXPECT_TRUE(ring.TryPush(1));
  EXPECT_TRUE(ring.TryPush(2));
  EXPECT_FALSE(ring.TryPush(3));
  ring.TryPop();
  EXPECT_TRUE(ring.TryPush(3));
}

TEST(SpscRingTest, WrapAroundPreservesOrder) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.TryPush(round * 10 + i));
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(ring.TryPop().value(), round * 10 + i);
    }
  }
}

TEST(SpscRingTest, FrontPeeksWithoutPopping) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);
  ring.TryPush(7);
  ring.TryPush(8);
  ASSERT_NE(ring.Front(), nullptr);
  EXPECT_EQ(*ring.Front(), 7);
  EXPECT_EQ(ring.SizeApprox(), 2u) << "peeking does not consume";
  EXPECT_EQ(ring.TryPop().value(), 7);
  EXPECT_EQ(*ring.Front(), 8);
}

TEST(SpscRingTest, FullApproxMatchesTryPush) {
  SpscRing<int> ring(2);
  EXPECT_FALSE(ring.FullApprox());
  ring.TryPush(1);
  ring.TryPush(2);
  EXPECT_TRUE(ring.FullApprox());
  ring.TryPop();
  EXPECT_FALSE(ring.FullApprox());
}

TEST(SpscRingTest, PopReleasesSlotPayload) {
  // Regression: TryPop used to leave the moved-from element in the slot,
  // keeping its heap payload alive until the slot was overwritten by a
  // later push. The pop must reset the slot.
  SpscRing<std::shared_ptr<int>> ring(4);
  auto payload = std::make_shared<int>(42);
  ASSERT_TRUE(ring.TryPush(payload));
  EXPECT_EQ(payload.use_count(), 2);
  {
    auto popped = ring.TryPop();
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(payload.use_count(), 2) << "popped copy + ours";
  }
  EXPECT_EQ(payload.use_count(), 1)
      << "after the popped value dies, no slot reference may remain";

  // Same for PopInto.
  ASSERT_TRUE(ring.TryPush(payload));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.PopInto(&out));
  out.reset();
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(SpscRingTest, PushUncheckedAndInPlaceFrontConsumption) {
  // The QueueOp hot path: PushUnchecked after a !FullApprox() check on the
  // producer side, FrontMutable + PopFront (move the payload out in place)
  // on the consumer side. PopFront must give the same slot-release
  // guarantee as TryPop.
  SpscRing<std::shared_ptr<int>> ring(2);
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  ASSERT_FALSE(ring.FullApprox());
  ring.PushUnchecked(std::shared_ptr<int>(a));
  ASSERT_FALSE(ring.FullApprox());
  ring.PushUnchecked(std::shared_ptr<int>(b));
  EXPECT_TRUE(ring.FullApprox());
  EXPECT_EQ(ring.AvailableToConsumer(), 2u);

  std::shared_ptr<int>* front = ring.FrontMutable();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(**front, 1);
  std::shared_ptr<int> taken = std::move(*front);
  ring.PopFront();
  EXPECT_EQ(a.use_count(), 2) << "taken copy + ours, slot released";

  front = ring.FrontMutable();
  ASSERT_NE(front, nullptr);
  EXPECT_EQ(**front, 2);
  ring.PopFront();  // dropped without moving out: reset must release it
  EXPECT_EQ(b.use_count(), 1);
  EXPECT_EQ(ring.FrontMutable(), nullptr);
  EXPECT_EQ(ring.AvailableToConsumer(), 0u);
}

TEST(SpscRingTest, BulkPushPeekPopPreservesOrderAcrossWraps) {
  // The batch-delivery hot path: FreeForProducer + PushBulkUnchecked on
  // the producer side, AtFromFront peeks + one PopFrontBulk on the
  // consumer side. Interleave bulk runs so the indices wrap several times.
  SpscRing<int> ring(8);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 10; ++round) {
    const size_t n = ring.FreeForProducer(5);
    ASSERT_GE(n, 5u);
    ring.PushBulkUnchecked(5, [&](size_t i) {
      return next_push + static_cast<int>(i);
    });
    next_push += 5;
    const size_t avail = ring.AvailableToConsumer();
    ASSERT_EQ(avail, 5u);
    for (size_t i = 0; i < avail; ++i) {
      EXPECT_EQ(*ring.AtFromFront(i), next_pop + static_cast<int>(i));
    }
    ring.PopFrontBulk(avail);
    next_pop += 5;
  }
  EXPECT_EQ(ring.AvailableToConsumer(), 0u);
}

TEST(SpscRingTest, FreeForProducerRefreshesOnlyWhenShort) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.FreeForProducer(4), 4u);
  ring.PushBulkUnchecked(4, [](size_t i) { return static_cast<int>(i); });
  EXPECT_EQ(ring.FreeForProducer(1), 0u);
  ring.PopFrontBulk(2);
  // The consumer freed two slots; the producer's next query must see them
  // (the cache refresh happens because fewer than `want` appeared free).
  EXPECT_EQ(ring.FreeForProducer(2), 2u);
}

TEST(SpscRingTest, PopFrontBulkReleasesSlotPayloads) {
  SpscRing<std::shared_ptr<int>> ring(4);
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  ring.PushBulkUnchecked(
      2, [&](size_t i) { return std::shared_ptr<int>(i == 0 ? a : b); });
  EXPECT_EQ(a.use_count(), 2);
  ring.PopFrontBulk(2);  // dropped without moving out: reset must release
  EXPECT_EQ(a.use_count(), 1);
  EXPECT_EQ(b.use_count(), 1);
}

TEST(SpscRingTest, BulkProducerConcurrentWithBulkConsumer) {
  SpscRing<int64_t> ring(256);
  constexpr int64_t kCount = 200'000;
  int64_t sum = 0;
  std::thread consumer([&] {
    int64_t received = 0;
    while (received < kCount) {
      const size_t avail = ring.AvailableToConsumer();
      for (size_t i = 0; i < avail; ++i) sum += *ring.AtFromFront(i);
      if (avail > 0) ring.PopFrontBulk(avail);
      received += static_cast<int64_t>(avail);
    }
  });
  int64_t next = 1;
  while (next <= kCount) {
    const size_t space = ring.FreeForProducer(64);
    const size_t n =
        std::min<size_t>(space, static_cast<size_t>(kCount - next + 1));
    if (n == 0) continue;
    ring.PushBulkUnchecked(n, [&](size_t i) {
      return next + static_cast<int64_t>(i);
    });
    next += static_cast<int64_t>(n);
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SpscRingTest, ConcurrentProducerConsumer) {
  SpscRing<int64_t> ring(1024);
  constexpr int64_t kCount = 200'000;
  int64_t sum = 0;
  std::thread consumer([&] {
    int64_t received = 0;
    while (received < kCount) {
      auto v = ring.TryPop();
      if (v) {
        sum += *v;
        ++received;
      }
    }
  });
  for (int64_t i = 1; i <= kCount;) {
    if (ring.TryPush(i)) ++i;
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

TEST(SyncQueueTest, FifoOrder) {
  SyncQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_EQ(q.TryPop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SyncQueueTest, CloseRejectsPushButDrains) {
  SyncQueue<int> q;
  q.Push(1);
  q.Close();
  EXPECT_FALSE(q.Push(2));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(SyncQueueTest, BlockingPopWakesOnPush) {
  SyncQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Push(99);
  });
  EXPECT_EQ(q.Pop().value(), 99);
  producer.join();
}

TEST(SyncQueueTest, BlockingPopWakesOnClose) {
  SyncQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    q.Close();
  });
  EXPECT_FALSE(q.Pop().has_value());
  closer.join();
}

TEST(SyncQueueTest, MultiProducerMultiConsumer) {
  SyncQueue<int> q;
  constexpr int kPerProducer = 10'000;
  constexpr int kProducers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.Pop();
        if (!v) return;
        sum.fetch_add(*v);
        consumed.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  while (consumed.load() < kProducers * kPerProducer) {
    std::this_thread::yield();
  }
  q.Close();
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(),
            static_cast<int64_t>(kProducers) * kPerProducer *
                (kPerProducer + 1) / 2);
}

}  // namespace
}  // namespace flexstream

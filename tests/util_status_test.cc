#include "util/status.h"

#include <gtest/gtest.h>

namespace flexstream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad port");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad port");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad port");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace flexstream

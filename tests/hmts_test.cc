// HmtsExecutor: multiple partitions under the level-3 ThreadScheduler,
// runtime priorities, and the paper's headline behavior — an expensive
// operator no longer stalls the cheap part of the graph.

#include "core/hmts.h"

#include <gtest/gtest.h>

#include <thread>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "util/busy_work.h"

#if defined(__SANITIZE_THREAD__)
#define FLEXSTREAM_TEST_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLEXSTREAM_TEST_UNDER_TSAN 1
#endif
#endif

namespace flexstream {
namespace {

// Two independent branches: cheap (src0 -> q0 -> count) and expensive
// (src1 -> q1 -> burn -> count).
struct TwoBranchRig {
  QueryGraph graph;
  QueryBuilder qb{&graph};
  Source* src[2];
  QueueOp* queue[2];
  CountingSink* sink[2];

  TwoBranchRig(double cheap_cost_micros, double expensive_cost_micros) {
    for (int i = 0; i < 2; ++i) {
      src[i] = qb.AddSource("src" + std::to_string(i));
      queue[i] = graph.Add<QueueOp>("q" + std::to_string(i));
      EXPECT_TRUE(graph.Connect(src[i], queue[i]).ok());
      Node* op = qb.Select(
          queue[i], "op" + std::to_string(i),
          [](const Tuple&) { return true; },
          i == 0 ? cheap_cost_micros : expensive_cost_micros);
      sink[i] = qb.CountSink(op, "sink" + std::to_string(i));
    }
  }
};

TEST(HmtsExecutorTest, RunsAllPartitionsToCompletion) {
  TwoBranchRig rig(0.0, 0.0);
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  for (int i = 0; i < 2; ++i) {
    specs[static_cast<size_t>(i)].name = "p" + std::to_string(i);
    specs[static_cast<size_t>(i)].queues = {rig.queue[i]};
  }
  HmtsExecutor executor(std::move(specs));
  executor.Start();
  for (int i = 0; i < 200; ++i) {
    rig.src[0]->Push(Tuple::OfInt(i, i));
    rig.src[1]->Push(Tuple::OfInt(i, i));
  }
  rig.src[0]->Close(200);
  rig.src[1]->Close(200);
  rig.sink[0]->WaitUntilClosed();
  rig.sink[1]->WaitUntilClosed();
  executor.RequestStop();
  executor.Join();
  EXPECT_TRUE(executor.Done());
  EXPECT_EQ(rig.sink[0]->count(), 200);
  EXPECT_EQ(rig.sink[1]->count(), 200);
}

TEST(HmtsExecutorTest, ExpensiveBranchDoesNotStallCheapBranch) {
  // The Section 4.2.1 motivation: with GTS (one thread) an expensive
  // operator delays everything; with HMTS the cheap partition keeps
  // producing. We run both configurations and compare how many cheap
  // results exist by the time the expensive branch finishes.
  // 8 expensive elements are queued; progress is sampled when half are
  // done, so the scheduler is provably still busy with expensive work at
  // the sampling instant (no end-of-run race).
  constexpr int kExpensiveCount = 8;
  constexpr int kExpensiveSample = 4;
  constexpr int kCheapCount = 2000;
  constexpr double kExpensiveCost = 50'000.0;  // 50 ms per element

  auto run = [&](bool hmts) -> int64_t {
    TwoBranchRig rig(0.0, kExpensiveCost);
    // Per-element batches so yield decisions happen between elements (the
    // expensive operator still blocks for its full per-element cost —
    // exactly the stall the paper describes).
    Partition::Options per_element;
    per_element.batch_size = 1;
    std::unique_ptr<HmtsExecutor> executor;
    if (hmts) {
      std::vector<HmtsExecutor::PartitionSpec> specs(2);
      specs[0].name = "cheap";
      specs[0].queues = {rig.queue[0]};
      specs[1].name = "expensive";
      specs[1].queues = {rig.queue[1]};
      executor = std::make_unique<HmtsExecutor>(
          std::move(specs), ThreadScheduler::Options(), per_element);
    } else {
      // GTS: both queues in one partition (one thread).
      std::vector<HmtsExecutor::PartitionSpec> specs(1);
      specs[0].name = "gts";
      specs[0].queues = {rig.queue[0], rig.queue[1]};
      executor = std::make_unique<HmtsExecutor>(
          std::move(specs), ThreadScheduler::Options(), per_element);
    }
    // Feed the expensive branch first so a GTS thread gets stuck on it.
    for (int i = 0; i < kExpensiveCount; ++i) {
      rig.src[1]->Push(Tuple::OfInt(i, i));
    }
    executor->Start();
    for (int i = 0; i < kCheapCount; ++i) {
      rig.src[0]->Push(Tuple::OfInt(i, i));
    }
    // Sample cheap progress while the expensive branch is mid-flight.
    while (rig.sink[1]->count() < kExpensiveSample) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const int64_t cheap_done = rig.sink[0]->count();
    rig.src[0]->Close(kCheapCount);
    rig.src[1]->Close(kCheapCount);
    rig.sink[0]->WaitUntilClosed();
    rig.sink[1]->WaitUntilClosed();
    executor->RequestStop();
    executor->Join();
    return cheap_done;
  };

  const int64_t cheap_under_gts = run(false);
  const int64_t cheap_under_hmts = run(true);
  EXPECT_LT(cheap_under_gts, kCheapCount / 10)
      << "GTS's single thread is stuck behind the expensive elements "
         "(FIFO processes them first)";
#if defined(FLEXSTREAM_TEST_UNDER_TSAN)
  // TSan inflates the cheap branch's per-tuple cost by an order of
  // magnitude, so finishing all of it inside the expensive branch's
  // burn window is not guaranteed; the scheduling property under test
  // is only that the cheap branch makes substantially more progress.
  EXPECT_GT(cheap_under_hmts, cheap_under_gts);
#else
  EXPECT_EQ(cheap_under_hmts, kCheapCount)
      << "under HMTS the cheap partition finishes while the expensive one "
         "is still burning";
  EXPECT_GT(cheap_under_hmts, cheap_under_gts);
#endif
}

TEST(HmtsExecutorTest, RuntimePriorityAdjustment) {
  TwoBranchRig rig(0.0, 0.0);
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  specs[0].name = "p0";
  specs[0].queues = {rig.queue[0]};
  specs[0].priority = 1.0;
  specs[1].name = "p1";
  specs[1].queues = {rig.queue[1]};
  specs[1].priority = 2.0;
  HmtsExecutor executor(std::move(specs));
  EXPECT_EQ(executor.thread_scheduler().PriorityOf(&executor.partition(0)),
            1.0);
  executor.SetPriority(0, 9.0);
  EXPECT_EQ(executor.thread_scheduler().PriorityOf(&executor.partition(0)),
            9.0);
}

TEST(HmtsExecutorTest, PerPartitionStrategies) {
  // Section 4.2.1: "HMTS offers to schedule each partition with respect to
  // a separate strategy."
  TwoBranchRig rig(0.0, 0.0);
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  specs[0].name = "chain-part";
  specs[0].queues = {rig.queue[0]};
  specs[0].strategy = StrategyKind::kChain;
  specs[1].name = "fifo-part";
  specs[1].queues = {rig.queue[1]};
  specs[1].strategy = StrategyKind::kFifo;
  HmtsExecutor executor(std::move(specs));
  EXPECT_STREQ(executor.partition(0).strategy()->name(), "chain");
  EXPECT_STREQ(executor.partition(1).strategy()->name(), "fifo");
  executor.Start();
  for (int i = 0; i < 50; ++i) {
    rig.src[0]->Push(Tuple::OfInt(i, i));
    rig.src[1]->Push(Tuple::OfInt(i, i));
  }
  rig.src[0]->Close(50);
  rig.src[1]->Close(50);
  rig.sink[0]->WaitUntilClosed();
  rig.sink[1]->WaitUntilClosed();
  executor.RequestStop();
  executor.Join();
  EXPECT_EQ(rig.sink[0]->count(), 50);
  EXPECT_EQ(rig.sink[1]->count(), 50);
}

TEST(HmtsExecutorTest, BoundedSlotsStillComplete) {
  // More partitions than execution slots: the TS must multiplex them all
  // to completion.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  constexpr int kBranches = 6;
  Source* srcs[kBranches];
  QueueOp* queues[kBranches];
  CountingSink* sinks[kBranches];
  for (int i = 0; i < kBranches; ++i) {
    srcs[i] = qb.AddSource("src" + std::to_string(i));
    queues[i] = graph.Add<QueueOp>("q" + std::to_string(i));
    ASSERT_TRUE(graph.Connect(srcs[i], queues[i]).ok());
    sinks[i] = qb.CountSink(queues[i], "sink" + std::to_string(i));
  }
  std::vector<HmtsExecutor::PartitionSpec> specs(kBranches);
  for (int i = 0; i < kBranches; ++i) {
    specs[static_cast<size_t>(i)].name = "p" + std::to_string(i);
    specs[static_cast<size_t>(i)].queues = {queues[i]};
    specs[static_cast<size_t>(i)].priority = static_cast<double>(i);
  }
  ThreadScheduler::Options ts_options;
  ts_options.max_running = 2;
  ts_options.quantum = std::chrono::milliseconds(1);
  HmtsExecutor executor(std::move(specs), ts_options);
  executor.Start();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < kBranches; ++i) {
      srcs[i]->Push(Tuple::OfInt(round, round));
    }
  }
  for (int i = 0; i < kBranches; ++i) srcs[i]->Close(100);
  for (int i = 0; i < kBranches; ++i) sinks[i]->WaitUntilClosed();
  executor.RequestStop();
  executor.Join();
  for (int i = 0; i < kBranches; ++i) {
    EXPECT_EQ(sinks[i]->count(), 100) << "branch " << i;
  }
}

}  // namespace
}  // namespace flexstream

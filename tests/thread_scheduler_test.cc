// Level-3 ThreadScheduler: slot limits, priority grants, aging, preemption
// flags, runtime priority adjustment.

#include "core/thread_scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "sched/fifo_strategy.h"
#include "sched/partition.h"

namespace flexstream {
namespace {

// A minimal partition (the TS only uses the pointer identity and name).
std::unique_ptr<Partition> MakeDummyPartition(QueryGraph* g,
                                              const std::string& name) {
  QueueOp* q = g->Add<QueueOp>("q_" + name);
  (void)q;
  return std::make_unique<Partition>(name, std::vector<QueueOp*>{},
                                     std::make_unique<FifoStrategy>());
}

TEST(ThreadSchedulerTest, DefaultsToHardwareConcurrency) {
  ThreadScheduler ts;
  EXPECT_GE(ts.max_running(), 1);
}

TEST(ThreadSchedulerTest, GrantsUpToMaxRunning) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 2;
  ThreadScheduler ts(opt);
  auto p1 = MakeDummyPartition(&g, "p1");
  auto p2 = MakeDummyPartition(&g, "p2");
  ts.Register(p1.get(), 0.0);
  ts.Register(p2.get(), 0.0);
  ts.Acquire(p1.get());
  ts.Acquire(p2.get());
  EXPECT_EQ(ts.running_count(), 2);
  ts.Release(p1.get());
  ts.Release(p2.get());
  EXPECT_EQ(ts.running_count(), 0);
  ts.Unregister(p1.get());
  ts.Unregister(p2.get());
}

TEST(ThreadSchedulerTest, ThirdAcquireBlocksUntilRelease) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 1;
  ThreadScheduler ts(opt);
  auto p1 = MakeDummyPartition(&g, "p1");
  auto p2 = MakeDummyPartition(&g, "p2");
  ts.Acquire(p1.get());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ts.Acquire(p2.get());
    acquired.store(true);
    ts.Release(p2.get());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  EXPECT_EQ(ts.waiting_count(), 1);
  ts.Release(p1.get());
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(ThreadSchedulerTest, HigherPriorityWaiterGrantedFirst) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 1;
  opt.aging_per_second = 0.0;  // pure priority order
  ThreadScheduler ts(opt);
  auto holder = MakeDummyPartition(&g, "holder");
  auto low = MakeDummyPartition(&g, "low");
  auto high = MakeDummyPartition(&g, "high");
  ts.Register(low.get(), 1.0);
  ts.Register(high.get(), 10.0);
  ts.Acquire(holder.get());
  std::atomic<int> order{0};
  std::atomic<int> low_rank{0};
  std::atomic<int> high_rank{0};
  std::thread t_low([&] {
    ts.Acquire(low.get());
    low_rank.store(++order);
    ts.Release(low.get());
  });
  // Ensure `low` is queued first so the test is about priority, not FIFO.
  while (ts.waiting_count() < 1) std::this_thread::yield();
  std::thread t_high([&] {
    ts.Acquire(high.get());
    high_rank.store(++order);
    ts.Release(high.get());
  });
  while (ts.waiting_count() < 2) std::this_thread::yield();
  ts.Release(holder.get());
  t_low.join();
  t_high.join();
  EXPECT_LT(high_rank.load(), low_rank.load());
}

TEST(ThreadSchedulerTest, ShouldYieldAfterQuantumWithWaiters) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 1;
  opt.quantum = std::chrono::milliseconds(5);
  ThreadScheduler ts(opt);
  auto p1 = MakeDummyPartition(&g, "p1");
  auto p2 = MakeDummyPartition(&g, "p2");
  ts.Acquire(p1.get());
  EXPECT_FALSE(ts.ShouldYield(p1.get())) << "no waiters";
  std::thread waiter([&] {
    ts.Acquire(p2.get());
    ts.Release(p2.get());
  });
  while (ts.waiting_count() < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(ts.ShouldYield(p1.get())) << "quantum expired, waiter present";
  ts.Release(p1.get());
  waiter.join();
}

TEST(ThreadSchedulerTest, PreemptFlagRaisedByHigherPriorityWaiter) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 1;
  opt.quantum = std::chrono::seconds(10);  // quantum never expires here
  ThreadScheduler ts(opt);
  auto low = MakeDummyPartition(&g, "low");
  auto high = MakeDummyPartition(&g, "high");
  ts.Register(low.get(), 1.0);
  ts.Register(high.get(), 5.0);
  ts.Acquire(low.get());
  EXPECT_FALSE(ts.ShouldYield(low.get()));
  std::thread waiter([&] {
    ts.Acquire(high.get());
    ts.Release(high.get());
  });
  while (ts.waiting_count() < 1) std::this_thread::yield();
  EXPECT_TRUE(ts.ShouldYield(low.get()))
      << "higher-priority waiter must preempt immediately";
  ts.Release(low.get());
  waiter.join();
}

TEST(ThreadSchedulerTest, AgingPreventsStarvation) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 1;
  opt.aging_per_second = 1000.0;  // ages fast for test speed
  ThreadScheduler ts(opt);
  auto high = MakeDummyPartition(&g, "high");
  auto starved = MakeDummyPartition(&g, "starved");
  ts.Register(high.get(), 100.0);
  ts.Register(starved.get(), 0.0);
  std::atomic<bool> starved_ran{false};
  std::thread starved_thread([&] {
    ts.Acquire(starved.get());
    starved_ran.store(true);
    ts.Release(starved.get());
  });
  // The high-priority partition repeatedly acquires/releases; aging must
  // eventually let the starved one through.
  const TimePoint deadline = Now() + std::chrono::seconds(5);
  while (!starved_ran.load() && Now() < deadline) {
    ts.Acquire(high.get());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ts.Release(high.get());
    std::this_thread::yield();
  }
  EXPECT_TRUE(starved_ran.load());
  starved_thread.join();
}

TEST(ThreadSchedulerTest, RuntimePriorityAdjustment) {
  QueryGraph g;
  ThreadScheduler ts;
  auto p = MakeDummyPartition(&g, "p");
  ts.Register(p.get(), 1.0);
  EXPECT_EQ(ts.PriorityOf(p.get()), 1.0);
  ts.SetPriority(p.get(), 7.5);
  EXPECT_EQ(ts.PriorityOf(p.get()), 7.5);
  ts.Unregister(p.get());
  EXPECT_EQ(ts.PriorityOf(p.get()), 0.0);
}

TEST(ThreadSchedulerTest, ManyThreadsAllMakeProgress) {
  QueryGraph g;
  ThreadScheduler::Options opt;
  opt.max_running = 2;
  opt.aging_per_second = 100.0;
  ThreadScheduler ts(opt);
  constexpr int kThreads = 6;
  constexpr int kRounds = 50;
  std::vector<std::unique_ptr<Partition>> parts;
  for (int i = 0; i < kThreads; ++i) {
    parts.push_back(MakeDummyPartition(&g, "p" + std::to_string(i)));
    ts.Register(parts.back().get(), static_cast<double>(i));
  }
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        ts.Acquire(parts[static_cast<size_t>(i)].get());
        total.fetch_add(1);
        ts.Release(parts[static_cast<size_t>(i)].get());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), kThreads * kRounds);
  EXPECT_EQ(ts.running_count(), 0);
}

}  // namespace
}  // namespace flexstream

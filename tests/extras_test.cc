// PriorityStrategy, RandomStrategy, and the statistics report.

#include <gtest/gtest.h>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "queue/queue_op.h"
#include "sched/extra_strategies.h"
#include "stats/report.h"

namespace flexstream {
namespace {

struct Branches {
  QueryGraph graph;
  Source* src[3];
  QueueOp* queue[3];
  CountingSink* sink[3];

  Branches() {
    for (int i = 0; i < 3; ++i) {
      src[i] = graph.Add<Source>("src" + std::to_string(i));
      queue[i] = graph.Add<QueueOp>("q" + std::to_string(i));
      sink[i] = graph.Add<CountingSink>("sink" + std::to_string(i));
      EXPECT_TRUE(graph.Connect(src[i], queue[i]).ok());
      EXPECT_TRUE(graph.Connect(queue[i], sink[i]).ok());
    }
  }

  std::vector<QueueOp*> queues() {
    return {queue[0], queue[1], queue[2]};
  }
};

TEST(PriorityStrategyTest, HigherPriorityWinsFifoTieBreak) {
  Branches rig;
  PriorityStrategy strategy;
  strategy.SetPriority(rig.queue[1], 5.0);
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[1]->Push(Tuple::OfInt(2, 2));
  rig.src[2]->Push(Tuple::OfInt(3, 3));
  EXPECT_EQ(strategy.Next(rig.queues()), rig.queue[1]);
  rig.queue[1]->DrainBatch(10);
  // Remaining two share priority 0: FIFO order (queue 0 pushed first).
  EXPECT_EQ(strategy.Next(rig.queues()), rig.queue[0]);
}

TEST(PriorityStrategyTest, DefaultPriorityIsZero) {
  Branches rig;
  PriorityStrategy strategy;
  EXPECT_EQ(strategy.PriorityOf(rig.queue[0]), 0.0);
  strategy.SetPriority(rig.queue[0], -2.0);
  EXPECT_EQ(strategy.PriorityOf(rig.queue[0]), -2.0);
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[1]->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(strategy.Next(rig.queues()), rig.queue[1])
      << "negative priority loses to default 0";
}

TEST(PriorityStrategyTest, EmptyQueuesSkipped) {
  Branches rig;
  PriorityStrategy strategy;
  strategy.SetPriority(rig.queue[0], 100.0);
  rig.src[2]->Push(Tuple::OfInt(1, 1));
  EXPECT_EQ(strategy.Next(rig.queues()), rig.queue[2]);
}

TEST(RandomStrategyTest, DeterministicForSeedAndOnlyNonEmpty) {
  Branches rig;
  rig.src[0]->Push(Tuple::OfInt(1, 1));
  rig.src[2]->Push(Tuple::OfInt(3, 3));
  RandomStrategy a(7);
  RandomStrategy b(7);
  for (int i = 0; i < 20; ++i) {
    QueueOp* qa = a.Next(rig.queues());
    EXPECT_EQ(qa, b.Next(rig.queues()));
    EXPECT_TRUE(qa == rig.queue[0] || qa == rig.queue[2]);
  }
}

TEST(RandomStrategyTest, EventuallyPicksEveryNonEmptyQueue) {
  Branches rig;
  for (int i = 0; i < 3; ++i) rig.src[i]->Push(Tuple::OfInt(i, i));
  RandomStrategy strategy(11);
  bool hit[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) {
    QueueOp* q = strategy.Next(rig.queues());
    for (int j = 0; j < 3; ++j) {
      if (q == rig.queue[j]) hit[j] = true;
    }
  }
  EXPECT_TRUE(hit[0] && hit[1] && hit[2]);
}

TEST(RandomStrategyTest, ReturnsNullWhenAllEmpty) {
  Branches rig;
  RandomStrategy strategy(3);
  EXPECT_EQ(strategy.Next(rig.queues()), nullptr);
}

TEST(RandomStrategyTest, SemanticsIndependentOfRandomOrder) {
  // Drain-to-empty under random order must deliver everything exactly
  // once per branch.
  Branches rig;
  for (int i = 0; i < 100; ++i) {
    for (int b = 0; b < 3; ++b) rig.src[b]->Push(Tuple::OfInt(i, i));
  }
  for (int b = 0; b < 3; ++b) rig.src[b]->Close(100);
  RandomStrategy strategy(5);
  while (QueueOp* q = strategy.Next(rig.queues())) {
    q->DrainBatch(7);
  }
  for (int b = 0; b < 3; ++b) {
    EXPECT_EQ(rig.sink[b]->count(), 100) << "branch " << b;
    EXPECT_TRUE(rig.sink[b]->closed());
  }
}

TEST(StatsReportTest, ContainsAllNodesAndMeasurements) {
  QueryGraph g;
  Source* src = g.Add<Source>("my_source");
  QueueOp* q = g.Add<QueueOp>("my_queue");
  Selection* sel = g.Add<Selection>(
      "my_filter", [](const Tuple& t) { return t.IntAt(0) < 5; });
  CollectingSink* sink = g.Add<CollectingSink>("my_sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i));
  q->DrainBatch(100);
  const std::string report = StatsReport(g);
  EXPECT_NE(report.find("my_source"), std::string::npos);
  EXPECT_NE(report.find("my_queue"), std::string::npos);
  EXPECT_NE(report.find("my_filter"), std::string::npos);
  EXPECT_NE(report.find("my_sink"), std::string::npos);
  Table table = BuildStatsTable(g);
  EXPECT_EQ(table.row_count(), 4u);
}

TEST(StatsReportTest, QueueColumnsOnlyForQueues) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  QueueOp* q = g.Add<QueueOp>("q");
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  src->Push(Tuple::OfInt(1, 1));
  const std::string report = StatsReport(g);
  // The queue row shows occupancy 1; operator rows show "-".
  EXPECT_NE(report.find("| 1 "), std::string::npos);
  EXPECT_NE(report.find("| - "), std::string::npos);
}

}  // namespace
}  // namespace flexstream

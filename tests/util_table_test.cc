#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace flexstream {
namespace {

TEST(TableTest, NumFormatting) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
  EXPECT_EQ(Table::Int(-42), "-42");
}

TEST(TableTest, AlignedPrint) {
  Table t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name   | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TableTest, CsvPrint) {
  Table t({"x", "y"});
  t.AddRow({"1", "2.5"});
  t.AddRow({"3", "4.5"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n3,4.5\n");
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableDeathTest, MismatchedRowDies) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK_EQ");
}

}  // namespace
}  // namespace flexstream

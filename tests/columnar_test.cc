// Columnar batch layer units (DESIGN.md §17): schema inference and
// matching, ColumnarBatch round-trips (append -> materialize must be
// byte-exact, including timestamps, router seq stamps, and string
// payloads), the kernel primitives (CompactRows, ProjectColumns), pool
// recycling, and the allocation-discipline satellites: Value's
// small-string optimization (short strings never heap-allocate) and the
// reserved batch-fill single-allocation guarantee.

#include "tuple/columnar_batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "tuple/batch_pool.h"
#include "tuple/schema.h"
#include "tuple/tuple_batch.h"

namespace {
std::atomic<int64_t> g_heap_allocs{0};
int64_t HeapAllocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
}  // namespace

// Counting global allocator: the allocation-discipline tests below assert
// exact heap traffic inside tight regions. Counts every operator new in
// this binary; tests only ever compare deltas across regions they control.
// GCC's -Wmismatched-new-delete fires on the malloc/free implementation
// under LTO even though new/delete are replaced as a matched pair.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace flexstream {
namespace {

SchemaPtr MixedSchema() {
  return MakeSchema({Value::Type::kInt64, Value::Type::kString,
                     Value::Type::kDouble});
}

Tuple MixedTuple(int64_t i, const std::string& s, double d, AppTime ts) {
  return Tuple({Value(i), Value(s), Value(d)}, ts);
}

// -- Schema -----------------------------------------------------------------

TEST(ColumnarSchemaTest, InferMatchAndCompare) {
  const Tuple t = MixedTuple(1, "abc", 2.5, 7);
  const Schema inferred = Schema::InferFrom(t);
  EXPECT_EQ(inferred.arity(), 3u);
  EXPECT_EQ(inferred.type(0), Value::Type::kInt64);
  EXPECT_EQ(inferred.type(1), Value::Type::kString);
  EXPECT_EQ(inferred.type(2), Value::Type::kDouble);
  EXPECT_TRUE(inferred.Matches(t));
  EXPECT_EQ(inferred, *MixedSchema());

  EXPECT_FALSE(inferred.Matches(Tuple::OfInt(1, 1))) << "arity mismatch";
  EXPECT_FALSE(inferred.Matches(Tuple::EndOfStream(9)))
      << "punctuations never match";
  const Schema ints(std::vector<Value::Type>{Value::Type::kInt64});
  EXPECT_NE(inferred, ints);
  EXPECT_TRUE(ints.Matches(Tuple::OfInt(5, 0)));
}

// -- Round-trip: append -> materialize is byte-exact ------------------------

TEST(ColumnarRoundTripTest, MaterializeReproducesRowsExactly) {
  ColumnarBatch batch;
  batch.ResetSchema(MixedSchema());
  std::vector<Tuple> originals;
  for (int i = 0; i < 10; ++i) {
    // Mix of empty, short (SSO), and long (heap) string payloads.
    std::string s;
    if (i % 3 == 1) s = "short";
    if (i % 3 == 2) s = std::string(100, static_cast<char>('a' + i));
    Tuple t = MixedTuple(i, s, i / 2.0, 1000 + i);
    if (i >= 5) t.set_seq(static_cast<uint64_t>(i));
    ASSERT_TRUE(batch.AppendTuple(t));
    originals.push_back(std::move(t));
  }
  ASSERT_EQ(batch.size(), originals.size());
  EXPECT_TRUE(batch.has_seqs());

  const TupleBatch rows = batch.Materialize();
  ASSERT_EQ(rows.size(), originals.size());
  for (size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(rows[i], originals[i]) << "row " << i;
    EXPECT_EQ(rows[i].timestamp(), originals[i].timestamp());
    EXPECT_EQ(rows[i].seq(), originals[i].seq()) << "seq stamp lost";
  }
}

TEST(ColumnarRoundTripTest, AppendRejectsMismatchLeavingBatchUntouched) {
  ColumnarBatch batch;
  batch.ResetSchema(MakeSchema({Value::Type::kInt64}));
  ASSERT_TRUE(batch.AppendTuple(Tuple::OfInt(1, 1)));
  EXPECT_FALSE(batch.AppendTuple(Tuple({Value("str")}, 2)))
      << "type drift must be rejected";
  EXPECT_FALSE(batch.AppendTuple(MixedTuple(1, "x", 2.0, 3)))
      << "arity drift must be rejected";
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.Materialize()[0], Tuple::OfInt(1, 1));
}

TEST(ColumnarRoundTripTest, SeqColumnBackfillsWhenStampsStartLate) {
  // First rows unstamped, later rows stamped: earlier rows must read seq 0.
  ColumnarBatch batch;
  batch.ResetSchema(MakeSchema({Value::Type::kInt64}));
  ASSERT_TRUE(batch.AppendTuple(Tuple::OfInt(0, 0)));
  Tuple stamped = Tuple::OfInt(1, 1);
  stamped.set_seq(42);
  ASSERT_TRUE(batch.AppendTuple(stamped));
  EXPECT_EQ(batch.SeqAt(0), 0u);
  EXPECT_EQ(batch.SeqAt(1), 42u);
  const TupleBatch rows = batch.Materialize();
  EXPECT_EQ(rows[0].seq(), 0u);
  EXPECT_EQ(rows[1].seq(), 42u);
}

// -- Kernel primitives ------------------------------------------------------

TEST(ColumnarKernelTest, CompactRowsKeepsSurvivorsInOrder) {
  ColumnarBatch batch;
  batch.ResetSchema(MixedSchema());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(batch.AppendTuple(
        MixedTuple(i, "s" + std::to_string(i), i * 1.5, i)));
  }
  const std::vector<uint32_t> keep = {1, 4, 7};
  batch.CompactRows(keep.data(), keep.size());
  ASSERT_EQ(batch.size(), 3u);
  for (size_t i = 0; i < keep.size(); ++i) {
    const int64_t v = static_cast<int64_t>(keep[i]);
    EXPECT_EQ(batch.Ints(0)[i], v);
    EXPECT_EQ(batch.StringAt(1, i), "s" + std::to_string(v));
    EXPECT_EQ(batch.Doubles(2)[i], v * 1.5);
    EXPECT_EQ(batch.Timestamps()[i], v);
  }
}

TEST(ColumnarKernelTest, ProjectColumnsHandlesDuplicatesAndSharedArena) {
  ColumnarBatch batch;
  batch.ResetSchema(MixedSchema());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batch.AppendTuple(
        MixedTuple(i, "payload" + std::to_string(i), i + 0.5, i)));
  }
  // Output (string, string, int): the repeated column must be copied, not
  // read from a moved-from vector.
  batch.ProjectColumns({1, 1, 0},
                       MakeSchema({Value::Type::kString, Value::Type::kString,
                                   Value::Type::kInt64}));
  ASSERT_EQ(batch.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(batch.StringAt(0, i), "payload" + std::to_string(i));
    EXPECT_EQ(batch.StringAt(1, i), "payload" + std::to_string(i));
    EXPECT_EQ(batch.Ints(2)[i], i);
  }
}

// -- Pool recycling ---------------------------------------------------------

TEST(ColumnarPoolTest, ReleaseThenAcquireRecyclesStorage) {
  columnar::ResetPoolStatsForTest();
  SchemaPtr schema = MakeSchema({Value::Type::kInt64});
  ColumnarBatchPtr batch = columnar::AcquireBatch(schema);
  ASSERT_NE(batch, nullptr);
  ASSERT_TRUE(batch->AppendTuple(Tuple::OfInt(1, 1)));
  columnar::ReleaseBatch(std::move(batch));

  ColumnarBatchPtr again = columnar::AcquireBatch(schema);
  ASSERT_NE(again, nullptr);
  EXPECT_TRUE(again->empty()) << "recycled batches come back clean";
  EXPECT_EQ(again->schema_ptr(), schema);
  const columnar::PoolStats stats = columnar::GetPoolStats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.pool_hits, 1u) << "second acquire must hit the free list";
  columnar::ReleaseBatch(std::move(again));
}

TEST(ColumnarPoolTest, MaterializeAndReleaseRecyclesInOneStep) {
  columnar::ResetPoolStatsForTest();
  ColumnarBatchPtr batch = columnar::AcquireBatch(MixedSchema());
  const Tuple t = MixedTuple(9, "nine", 9.5, 99);
  ASSERT_TRUE(batch->AppendTuple(t));
  const TupleBatch rows = columnar::MaterializeAndRelease(std::move(batch));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], t);
  EXPECT_EQ(columnar::GetPoolStats().releases, 1u);
}

// -- Satellite: Value small-string optimization ------------------------------

TEST(ColumnarValueSboTest, ShortStringsLiveInsideTheValue) {
  // libstdc++/libc++ keep strings up to 15 bytes inline; a Value holds its
  // std::string by value inside the variant, so a short payload's bytes
  // must lie within the Value object itself — no heap allocation.
  const Value v(std::string("0123456789abcde"));  // exactly 15 bytes
  const char* data = v.AsString().data();
  const char* lo = reinterpret_cast<const char*>(&v);
  EXPECT_TRUE(data >= lo && data < lo + sizeof(Value))
      << "15-byte string escaped the Value footprint (heap-allocated)";
}

TEST(ColumnarValueSboTest, ShortStringValueConstructionDoesNotAllocate) {
  std::string s = "tiny";
  const int64_t before = HeapAllocs();
  const Value v(std::move(s));
  const int64_t after = HeapAllocs();
  EXPECT_EQ(after - before, 0) << "short-string Value hit the heap";
  EXPECT_EQ(v.AsString(), "tiny");
}

TEST(ColumnarValueSboTest, LongStringBufferMovesWithTheValue) {
  // The move-probe: a heap payload's buffer address must survive moving
  // the Value (mirrors the batch-path EmitMove probe).
  Value v(std::string(96, 'z'));
  const void* buffer = v.AsString().data();
  const int64_t before = HeapAllocs();
  const Value moved(std::move(v));
  const int64_t after = HeapAllocs();
  EXPECT_EQ(after - before, 0) << "moving a Value must not allocate";
  EXPECT_EQ(static_cast<const void*>(moved.AsString().data()), buffer)
      << "move copied the heap buffer";
}

// -- Satellite: TupleBatch growth policy ------------------------------------

TEST(ColumnarBatchFillTest, ReservedFillDoesNotReallocate) {
  constexpr size_t kN = 64;
  std::vector<Tuple> tuples;
  tuples.reserve(kN);
  for (size_t i = 0; i < kN; ++i) {
    tuples.push_back(Tuple::OfInt(static_cast<int64_t>(i), i));
  }
  TupleBatch batch;
  batch.reserve(kN);
  const int64_t before = HeapAllocs();
  for (Tuple& t : tuples) batch.PushBack(std::move(t));
  const int64_t after = HeapAllocs();
  EXPECT_EQ(after - before, 0)
      << "filling a reserved batch must not touch the heap";
  EXPECT_EQ(batch.size(), kN);
}

TEST(ColumnarBatchFillTest, SourceEmitHintMakesBatchFillSingleAllocation) {
  // Source::SetEmitBatchSize reserves the pending batch up front and
  // re-reserves after each flush, so one full fill-and-flush cycle costs
  // exactly one allocation: the post-flush re-reserve.
  constexpr size_t kBatch = 64;
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CountingSink* sink = g.Add<CountingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->SetEmitBatchSize(kBatch);

  std::vector<Tuple> tuples;
  tuples.reserve(kBatch);
  for (size_t i = 0; i < kBatch; ++i) {
    tuples.push_back(Tuple::OfInt(static_cast<int64_t>(i), i));
  }
  const int64_t before = HeapAllocs();
  for (Tuple& t : tuples) src->Push(std::move(t));
  const int64_t after = HeapAllocs();
  EXPECT_EQ(after - before, 1)
      << "a batch fill + flush cycle must cost exactly one allocation";
  EXPECT_EQ(sink->count(), static_cast<int64_t>(kBatch));
  src->Close(kBatch);
}

}  // namespace
}  // namespace flexstream

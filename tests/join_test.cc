// Join semantics: SHJ and SNJ against a brute-force oracle, SHJ == SNJ on
// equi-joins, multiway join against pairwise composition.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/query_graph.h"
#include "operators/multiway_join.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/symmetric_nl_join.h"
#include "util/random.h"

namespace flexstream {
namespace {

struct Event {
  int side;  // 0 = left, 1 = right
  Tuple tuple;
};

/// Interleaved monotone two-stream workload.
std::vector<Event> MakeWorkload(uint64_t seed, int n, int64_t key_range) {
  Rng rng(seed);
  std::vector<Event> events;
  AppTime ts = 0;
  for (int i = 0; i < n; ++i) {
    ts += rng.UniformInt(0, 30);
    events.push_back(
        {static_cast<int>(rng.NextU64(2)),
         Tuple({Value(rng.UniformInt(0, key_range)), Value(int64_t{i})},
               ts)});
  }
  return events;
}

/// Brute-force sliding-window equi-join oracle.
std::vector<Tuple> OracleJoin(const std::vector<Event>& events,
                              AppTime window) {
  std::vector<Tuple> results;
  std::vector<Tuple> sides[2];
  for (const Event& e : events) {
    const auto& other = sides[1 - e.side];
    for (const Tuple& cand : other) {
      if (cand.timestamp() < e.tuple.timestamp() - window) continue;
      if (cand.at(0) != e.tuple.at(0)) continue;
      results.push_back(e.side == 0 ? Tuple::Concat(e.tuple, cand)
                                    : Tuple::Concat(cand, e.tuple));
    }
    sides[e.side].push_back(e.tuple);
  }
  return results;
}

std::vector<Tuple> Sorted(std::vector<Tuple> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct JoinRig {
  QueryGraph graph;
  Source* left;
  Source* right;
  CollectingSink* sink;

  template <typename JoinT, typename... Args>
  JoinT* Wire(Args&&... args) {
    left = graph.Add<Source>("left");
    right = graph.Add<Source>("right");
    JoinT* join = graph.Add<JoinT>(std::forward<Args>(args)...);
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(left, join, 0).ok());
    EXPECT_TRUE(graph.Connect(right, join, 1).ok());
    EXPECT_TRUE(graph.Connect(join, sink).ok());
    return join;
  }

  void Feed(const std::vector<Event>& events) {
    for (const Event& e : events) {
      (e.side == 0 ? left : right)->Push(e.tuple);
    }
  }
};

TEST(ShjTest, BasicMatchProducesConcatenation) {
  JoinRig rig;
  rig.Wire<SymmetricHashJoin>("j", 1000);
  rig.left->Push(Tuple({Value(7), Value(100)}, 1));
  rig.right->Push(Tuple({Value(7), Value(200)}, 2));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0], Tuple({Value(7), Value(100), Value(7), Value(200)},
                              2));
}

TEST(ShjTest, NoMatchOnDifferentKeys) {
  JoinRig rig;
  rig.Wire<SymmetricHashJoin>("j", 1000);
  rig.left->Push(Tuple::OfInt(1, 1));
  rig.right->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(rig.sink->size(), 0u);
}

TEST(ShjTest, WindowExpiresOldTuples) {
  JoinRig rig;
  SymmetricHashJoin* join = rig.Wire<SymmetricHashJoin>("j", 100);
  rig.left->Push(Tuple::OfInt(7, 0));
  rig.right->Push(Tuple::OfInt(7, 50));   // match
  rig.right->Push(Tuple::OfInt(7, 150));  // left@0 expired (150-100=50 > 0)
  auto results = rig.sink->TakeResults();
  EXPECT_EQ(results.size(), 1u);
  EXPECT_LE(join->StateSize(), 3u);
}

TEST(ShjTest, StateSizeTracksStoredTuples) {
  JoinRig rig;
  SymmetricHashJoin* join = rig.Wire<SymmetricHashJoin>("j", 1000);
  EXPECT_EQ(join->StateSize(), 0u);
  rig.left->Push(Tuple::OfInt(1, 1));
  rig.right->Push(Tuple::OfInt(2, 2));
  EXPECT_EQ(join->StateSize(), 2u);
  rig.graph.ResetAll();
  EXPECT_EQ(join->StateSize(), 0u);
}

TEST(ShjTest, DifferentKeyAttributesPerSide) {
  JoinRig rig;
  rig.Wire<SymmetricHashJoin>("j", 1000, /*left_key=*/1, /*right_key=*/0);
  rig.left->Push(Tuple({Value(99), Value(5)}, 1));
  rig.right->Push(Tuple({Value(5), Value(88)}, 2));
  EXPECT_EQ(rig.sink->size(), 1u);
}

TEST(ShjTest, ScheduleIndependentWindowBand) {
  // When one input runs far ahead of the other (possible whenever the two
  // queues are drained by different threads), a stored tuple from "the
  // future" must not join with a late-processed old tuple: the pair's
  // timestamp distance exceeds the window no matter the processing order.
  JoinRig rig;
  rig.Wire<SymmetricHashJoin>("j", 100);
  rig.right->Push(Tuple::OfInt(7, 1000));  // right side far ahead
  rig.left->Push(Tuple::OfInt(7, 10));     // old left tuple arrives late
  EXPECT_EQ(rig.sink->size(), 0u)
      << "|1000 - 10| > 100: no match regardless of processing order";
  // Within the band it does match.
  rig.left->Push(Tuple::OfInt(7, 950));
  EXPECT_EQ(rig.sink->size(), 1u);
}

TEST(SnjTest, ScheduleIndependentWindowBand) {
  JoinRig rig;
  rig.Wire<SymmetricNlJoin>("j", 100, SymmetricNlJoin::EqualAttr(0, 0));
  rig.right->Push(Tuple::OfInt(7, 1000));
  rig.left->Push(Tuple::OfInt(7, 10));
  EXPECT_EQ(rig.sink->size(), 0u);
  rig.left->Push(Tuple::OfInt(7, 1001));
  EXPECT_EQ(rig.sink->size(), 1u);
}

TEST(SnjTest, ArbitraryPredicate) {
  JoinRig rig;
  rig.Wire<SymmetricNlJoin>("j", 1000,
                            [](const Tuple& l, const Tuple& r) {
                              return l.IntAt(0) < r.IntAt(0);
                            });
  rig.left->Push(Tuple::OfInt(5, 1));
  rig.right->Push(Tuple::OfInt(10, 2));  // 5 < 10: match
  rig.right->Push(Tuple::OfInt(3, 3));   // 5 < 3: no
  EXPECT_EQ(rig.sink->size(), 1u);
}

TEST(SnjTest, OutputAlwaysLeftThenRight) {
  JoinRig rig;
  rig.Wire<SymmetricNlJoin>("j", 1000, SymmetricNlJoin::EqualAttr(0, 0));
  rig.right->Push(Tuple({Value(1), Value("R")}, 1));
  rig.left->Push(Tuple({Value(1), Value("L")}, 2));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].StringAt(1), "L");
  EXPECT_EQ(results[0].StringAt(3), "R");
}

class JoinOracleTest : public ::testing::TestWithParam<
                           std::tuple<uint64_t, int64_t, AppTime>> {};

TEST_P(JoinOracleTest, ShjMatchesOracle) {
  const auto [seed, key_range, window] = GetParam();
  const auto events = MakeWorkload(seed, 400, key_range);
  JoinRig rig;
  rig.Wire<SymmetricHashJoin>("j", window);
  rig.Feed(events);
  EXPECT_EQ(Sorted(rig.sink->TakeResults()),
            Sorted(OracleJoin(events, window)));
}

TEST_P(JoinOracleTest, SnjMatchesOracleOnEquiJoin) {
  const auto [seed, key_range, window] = GetParam();
  const auto events = MakeWorkload(seed, 400, key_range);
  JoinRig rig;
  rig.Wire<SymmetricNlJoin>("j", window, SymmetricNlJoin::EqualAttr(0, 0));
  rig.Feed(events);
  EXPECT_EQ(Sorted(rig.sink->TakeResults()),
            Sorted(OracleJoin(events, window)));
}

TEST_P(JoinOracleTest, ShjAndSnjAgree) {
  const auto [seed, key_range, window] = GetParam();
  const auto events = MakeWorkload(seed, 400, key_range);
  JoinRig hash_rig;
  hash_rig.Wire<SymmetricHashJoin>("j", window);
  hash_rig.Feed(events);
  JoinRig nl_rig;
  nl_rig.Wire<SymmetricNlJoin>("j", window,
                               SymmetricNlJoin::EqualAttr(0, 0));
  nl_rig.Feed(events);
  EXPECT_EQ(Sorted(hash_rig.sink->TakeResults()),
            Sorted(nl_rig.sink->TakeResults()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JoinOracleTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(int64_t{5}, int64_t{50}),
                       ::testing::Values(AppTime{100}, AppTime{5000})));

TEST(MultiwayJoinTest, ThreeWayMatch) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  Source* c = g.Add<Source>("c");
  MultiwayJoin* join =
      g.Add<MultiwayJoin>("mj", 1000, std::vector<size_t>{0, 0, 0});
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  ASSERT_TRUE(g.Connect(c, join, 2).ok());
  ASSERT_TRUE(g.Connect(join, sink).ok());
  a->Push(Tuple({Value(1), Value("A")}, 1));
  b->Push(Tuple({Value(1), Value("B")}, 2));
  EXPECT_EQ(sink->size(), 0u) << "needs all three inputs";
  c->Push(Tuple({Value(1), Value("C")}, 3));
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].arity(), 6u);
  EXPECT_EQ(results[0].StringAt(1), "A");
  EXPECT_EQ(results[0].StringAt(3), "B");
  EXPECT_EQ(results[0].StringAt(5), "C");
  EXPECT_EQ(results[0].timestamp(), 3);
}

TEST(MultiwayJoinTest, EmitsAllCombinations) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  MultiwayJoin* join =
      g.Add<MultiwayJoin>("mj", 1000, std::vector<size_t>{0, 0});
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  ASSERT_TRUE(g.Connect(join, sink).ok());
  a->Push(Tuple::OfInt(1, 1));
  a->Push(Tuple::OfInt(1, 2));
  b->Push(Tuple::OfInt(1, 3));
  EXPECT_EQ(sink->size(), 2u);
}

TEST(MultiwayJoinTest, TwoWayAgreesWithShj) {
  const auto events = MakeWorkload(99, 300, 10);
  JoinRig shj_rig;
  shj_rig.Wire<SymmetricHashJoin>("j", 500);
  shj_rig.Feed(events);

  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  MultiwayJoin* join =
      g.Add<MultiwayJoin>("mj", 500, std::vector<size_t>{0, 0});
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  ASSERT_TRUE(g.Connect(join, sink).ok());
  for (const Event& e : events) (e.side == 0 ? a : b)->Push(e.tuple);

  // Timestamps of results can differ (MJoin takes max over parts; SHJ max
  // over the pair) — compare attribute content only.
  auto strip = [](std::vector<Tuple> v) {
    for (Tuple& t : v) t.set_timestamp(0);
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(strip(sink->TakeResults()),
            strip(shj_rig.sink->TakeResults()));
}

TEST(MultiwayJoinTest, WindowExpiration) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  MultiwayJoin* join =
      g.Add<MultiwayJoin>("mj", 100, std::vector<size_t>{0, 0});
  CollectingSink* sink = g.Add<CollectingSink>("sink");
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  ASSERT_TRUE(g.Connect(join, sink).ok());
  a->Push(Tuple::OfInt(1, 0));
  b->Push(Tuple::OfInt(1, 300));
  EXPECT_EQ(sink->size(), 0u);
  EXPECT_EQ(join->StateSize(), 1u);
}

}  // namespace
}  // namespace flexstream

// Tests of the push-based Operator base: direct interoperability, EOS
// punctuation handling, statistics, serialized receive.

#include "operators/operator.h"

#include <gtest/gtest.h>

#include <thread>

#include "graph/query_graph.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "util/busy_work.h"

namespace flexstream {
namespace {

class StatsGuard {
 public:
  explicit StatsGuard(bool enabled) { SetStatsCollectionEnabled(enabled); }
  ~StatsGuard() { SetStatsCollectionEnabled(true); }
};

TEST(OperatorTest, EmitReachesAllSubscribersInOrder) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  std::vector<int> order;
  CallbackSink* sink1 = g.Add<CallbackSink>(
      "out1", [&](const Tuple&, int) { order.push_back(1); });
  CallbackSink* sink2 = g.Add<CallbackSink>(
      "out2", [&](const Tuple&, int) { order.push_back(2); });
  ASSERT_TRUE(g.Connect(src, sink1).ok());
  ASSERT_TRUE(g.Connect(src, sink2).ok());
  src->Push(Tuple::OfInt(7));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(OperatorTest, DepthFirstChainReaction) {
  // An element pushed at the source traverses the whole chain before Push
  // returns (Section 2.4's DI semantics).
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>(
      "f", [](const Tuple& t) { return t.IntAt(0) % 2 == 0; });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  src->Push(Tuple::OfInt(2));
  EXPECT_EQ(sink->size(), 1u) << "result visible immediately after Push";
  src->Push(Tuple::OfInt(3));
  EXPECT_EQ(sink->size(), 1u);
}

TEST(OperatorTest, EosPropagatesThroughChain) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", [](const Tuple&) { return true; });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  EXPECT_FALSE(sink->closed());
  src->Close(50);
  EXPECT_TRUE(sel->closed());
  EXPECT_TRUE(sink->closed());
  sink->WaitUntilClosed();  // must not block
}

TEST(OperatorTest, CloseIsIdempotent) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->Close();
  src->Close();
  EXPECT_TRUE(sink->closed());
}

TEST(OperatorTest, MultiInputWaitsForAllEos) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  ASSERT_TRUE(g.Connect(u, sink).ok());
  a->Close(10);
  EXPECT_FALSE(u->closed()) << "one open input remains";
  b->Push(Tuple::OfInt(1, 11));
  EXPECT_EQ(sink->size(), 1u) << "data still flows from the open input";
  b->Close(12);
  EXPECT_TRUE(u->closed());
  EXPECT_TRUE(sink->closed());
}

TEST(OperatorTest, ResetReArmsEos) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->Push(Tuple::OfInt(1));
  src->Close();
  EXPECT_TRUE(sink->closed());
  g.ResetAll();
  EXPECT_FALSE(sink->closed());
  EXPECT_EQ(sink->size(), 0u);
  src->Push(Tuple::OfInt(2));
  src->Close();
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(sink->size(), 1u);
}

TEST(OperatorTest, StatsCountProcessedAndEmitted) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>(
      "f", [](const Tuple& t) { return t.IntAt(0) < 5; });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i));
  EXPECT_EQ(sel->stats().processed(), 10);
  EXPECT_EQ(sel->stats().emitted(), 5);
  EXPECT_NEAR(sel->Selectivity(), 0.5, 1e-9);
}

TEST(OperatorTest, SelfTimeExcludesDownstreamCost) {
  // Upstream cheap selection followed by an expensive one: with DI the
  // cheap operator's Process includes the downstream call, but measured
  // c(v) must be per-operator (Section 5.1.2).
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* cheap =
      g.Add<Selection>("cheap", [](const Tuple&) { return true; });
  Selection* expensive = g.Add<Selection>(
      "expensive", [](const Tuple&) { return true; }, /*cost=*/2000.0);
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, cheap).ok());
  ASSERT_TRUE(g.Connect(cheap, expensive).ok());
  ASSERT_TRUE(g.Connect(expensive, sink).ok());
  for (int i = 0; i < 20; ++i) src->Push(Tuple::OfInt(i));
  EXPECT_GE(expensive->CostMicros(), 500.0);
  EXPECT_LT(cheap->CostMicros(), expensive->CostMicros() / 4)
      << "cheap operator must not be billed for the expensive one";
}

TEST(OperatorTest, StatsDisabledSkipsBookkeeping) {
  StatsGuard guard(false);
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", [](const Tuple&) { return true; });
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  src->Push(Tuple::OfInt(1));
  EXPECT_EQ(sel->stats().processed(), 0);
  EXPECT_EQ(sink->size(), 1u) << "data flow unaffected";
}

TEST(OperatorTest, SerializedReceiveAllowsConcurrentDrivers) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  CountingSink* sink = g.Add<CountingSink>("out");
  ASSERT_TRUE(g.Connect(a, u).ok());
  ASSERT_TRUE(g.Connect(b, u).ok());
  ASSERT_TRUE(g.Connect(u, sink).ok());
  u->SetSerializedReceive(true);
  sink->SetSerializedReceive(true);
  EXPECT_TRUE(u->serialized_receive());
  constexpr int kPerSource = 20000;
  std::thread ta([&] {
    for (int i = 0; i < kPerSource; ++i) a->Push(Tuple::OfInt(i, i));
    a->Close(kPerSource);
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerSource; ++i) b->Push(Tuple::OfInt(i, i));
    b->Close(kPerSource);
  });
  ta.join();
  tb.join();
  EXPECT_EQ(sink->count(), 2 * kPerSource);
  EXPECT_TRUE(sink->closed());
}

TEST(SourceTest, VectorSourceReplaysAllThenCloses) {
  QueryGraph g;
  VectorSource* src = g.Add<VectorSource>(
      "v", std::vector<Tuple>{Tuple::OfInt(1, 1), Tuple::OfInt(2, 2)});
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->PushAll();
  EXPECT_EQ(sink->size(), 2u);
  EXPECT_TRUE(sink->closed());
}

TEST(SinkTest, CountingSinkTimeline) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CountingSink* sink = g.Add<CountingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  sink->StartTimeline(Now());
  src->Push(Tuple::OfInt(1));
  src->Push(Tuple::OfInt(2));
  auto timeline = sink->TakeTimeline();
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_EQ(timeline[0].second, 1);
  EXPECT_EQ(timeline[1].second, 2);
  EXPECT_LE(timeline[0].first, timeline[1].first);
}

TEST(SinkTest, WaitUntilClosedForTimesOut) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  EXPECT_FALSE(sink->WaitUntilClosedFor(std::chrono::milliseconds(10)));
  src->Close();
  EXPECT_TRUE(sink->WaitUntilClosedFor(std::chrono::milliseconds(10)));
}

TEST(SinkTest, CollectingSinkTakeResultsMoves) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, sink).ok());
  src->Push(Tuple::OfInt(1));
  auto results = sink->TakeResults();
  EXPECT_EQ(results.size(), 1u);
  EXPECT_EQ(sink->size(), 0u);
}

}  // namespace
}  // namespace flexstream

// Stress tests for the QueueOp SPSC fast path: a producer and a consumer
// hammering one queue through mode selection, ring-overflow spillover and
// EOS. Run these under ThreadSanitizer:
//
//   cmake -B build-tsan -S . -DFLEXSTREAM_SANITIZE=thread
//   cmake --build build-tsan -j
//   ctest --test-dir build-tsan --output-on-failure -R 'QueueOp|SpscRing|SyncQueue|Partition|ThreadScheduler|QueueSpscStress'

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "placement/producer_annotation.h"
#include "queue/queue_op.h"
#include "sched/partition.h"
#include "sched/strategy.h"
#include "test_util.h"

namespace flexstream {
namespace {

TEST(QueueSpscStressTest, ProducerConsumerThroughTinyRing) {
  // Tiny ring so the stress constantly crosses the overflow boundary in
  // both directions.
  testutil::QueueRig rig(/*ring_capacity=*/16);
  Source* src = rig.src;
  QueueOp* q = rig.queue;
  CollectingSink* sink = rig.sink;

  // Mode selection via the placement annotation: one producing source.
  AnnotateSingleProducerQueues({q}, nullptr);
  ASSERT_TRUE(q->single_producer());

  constexpr int kCount = 50'000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      // String payload: the move path and the slot reset matter here.
      src->Push(Tuple({Value(static_cast<int64_t>(i)),
                       Value(std::string("payload-") + std::to_string(i))},
                      i));
    }
    src->Close(kCount);
  });
  while (!q->Exhausted()) {
    q->DrainBatch(64);
  }
  producer.join();

  EXPECT_TRUE(sink->closed());
  auto results = sink->TakeResults();
  ASSERT_EQ(results.size(), static_cast<size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    ASSERT_EQ(results[i].IntAt(0), i) << "FIFO violated at " << i;
    ASSERT_EQ(results[i].StringAt(1),
              std::string("payload-") + std::to_string(i));
  }
  EXPECT_GT(q->ring_pushes(), 0) << "fast path never taken";
  EXPECT_GT(q->locked_pushes(), 0) << "spillover never exercised";
}

TEST(QueueSpscStressTest, PartitionDrivenConsumerWithCoalescedWakeups) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  QueueOp* q = g.Add<QueueOp>("q", /*ring_capacity=*/64);
  CountingSink* sink = g.Add<CountingSink>("sink");
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());
  q->SetSingleProducer(true);

  Partition partition("p0", {q}, MakeStrategy(StrategyKind::kFifo));
  partition.Start();

  constexpr int kCount = 100'000;
  for (int i = 0; i < kCount; ++i) src->Push(Tuple::OfInt(i, i));
  src->Close(kCount);

  sink->WaitUntilClosed();
  partition.RequestStop();
  partition.Join();

  EXPECT_EQ(sink->count(), kCount);
  EXPECT_EQ(partition.drained(), kCount);
  EXPECT_TRUE(q->Exhausted());
  // Coalescing: the queue notified far less often than once per tuple
  // (only on empty -> non-empty transitions and EOS). The exact number is
  // timing-dependent; the bound is generous but would catch a regression
  // to per-tuple notification.
  EXPECT_LT(q->notifications(), kCount / 2)
      << "wakeups should be O(batches), not O(tuples)";
}

TEST(QueueSpscStressTest, MpscFallbackStillCorrectUnderAnnotation) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q", /*ring_capacity=*/16);
  CountingSink* sink = g.Add<CountingSink>("sink");
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(b, q).ok());
  ASSERT_TRUE(g.Connect(q, sink).ok());

  // Two producing sources: annotation must keep the MPSC path.
  AnnotateSingleProducerQueues({q}, nullptr);
  ASSERT_FALSE(q->single_producer());

  constexpr int kPerProducer = 30'000;
  std::thread ta([&] {
    for (int i = 0; i < kPerProducer; ++i) a->Push(Tuple::OfInt(i, i));
    a->Close(kPerProducer);
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerProducer; ++i) b->Push(Tuple::OfInt(i, i));
    b->Close(kPerProducer);
  });
  while (!q->Exhausted()) {
    q->DrainBatch(256);
  }
  ta.join();
  tb.join();
  EXPECT_EQ(sink->count(), 2 * kPerProducer);
  EXPECT_TRUE(sink->closed());
  EXPECT_EQ(q->ring_pushes(), 0) << "MPSC mode must not touch the ring";
}

}  // namespace
}  // namespace flexstream

// Random DAG generator properties (Figure 11 substrate).

#include "graph/random_dag.h"

#include <gtest/gtest.h>

#include <cmath>

namespace flexstream {
namespace {

TEST(RandomDagTest, GeneratesRequestedNodeCount) {
  Rng rng(1);
  RandomDagOptions opt;
  opt.node_count = 50;
  opt.source_count = 3;
  auto graph = GenerateRandomDag(opt, &rng);
  EXPECT_EQ(graph->node_count(), 50u);
  EXPECT_EQ(graph->Sources().size(), 3u);
}

TEST(RandomDagTest, GraphValidatesAndIsAcyclic) {
  Rng rng(2);
  RandomDagOptions opt;
  opt.node_count = 200;
  auto graph = GenerateRandomDag(opt, &rng);
  EXPECT_TRUE(graph->Validate().ok());
  EXPECT_TRUE(graph->TopologicalOrder().ok());
}

TEST(RandomDagTest, EveryNonSourceHasProducer) {
  Rng rng(3);
  RandomDagOptions opt;
  opt.node_count = 100;
  auto graph = GenerateRandomDag(opt, &rng);
  for (const Node* n : graph->nodes()) {
    if (!n->is_source()) {
      EXPECT_GE(n->fan_in(), 1u) << n->DebugString();
    }
  }
}

TEST(RandomDagTest, MetadataWithinConfiguredRanges) {
  Rng rng(4);
  RandomDagOptions opt;
  opt.node_count = 100;
  opt.min_cost_micros = 1.0;
  opt.max_cost_micros = 100.0;
  opt.min_selectivity = 0.2;
  opt.max_selectivity = 0.8;
  auto graph = GenerateRandomDag(opt, &rng);
  for (const Node* n : graph->nodes()) {
    if (n->is_source()) continue;
    EXPECT_GE(n->CostMicros(), 1.0);
    EXPECT_LE(n->CostMicros(), 100.0 * 1.0001);
    EXPECT_GE(n->Selectivity(), 0.2);
    EXPECT_LE(n->Selectivity(), 0.8);
  }
}

TEST(RandomDagTest, RatesArePropagated) {
  Rng rng(5);
  RandomDagOptions opt;
  opt.node_count = 40;
  auto graph = GenerateRandomDag(opt, &rng);
  for (const Node* n : graph->nodes()) {
    EXPECT_TRUE(n->has_interarrival_override() ||
                std::isfinite(n->InterarrivalMicros()))
        << n->DebugString();
    EXPECT_GT(n->InterarrivalMicros(), 0.0);
  }
}

TEST(RandomDagTest, DeterministicForSameRngState) {
  RandomDagOptions opt;
  opt.node_count = 30;
  Rng rng_a(42);
  Rng rng_b(42);
  auto a = GenerateRandomDag(opt, &rng_a);
  auto b = GenerateRandomDag(opt, &rng_b);
  ASSERT_EQ(a->node_count(), b->node_count());
  for (size_t i = 0; i < a->node_count(); ++i) {
    EXPECT_EQ(a->nodes()[i]->fan_in(), b->nodes()[i]->fan_in());
    EXPECT_EQ(a->nodes()[i]->CostMicros(), b->nodes()[i]->CostMicros());
  }
}

TEST(RandomDagTest, MaxFanInRespected) {
  Rng rng(6);
  RandomDagOptions opt;
  opt.node_count = 150;
  opt.max_fan_in = 2;
  opt.second_input_probability = 0.9;
  auto graph = GenerateRandomDag(opt, &rng);
  bool saw_two = false;
  for (const Node* n : graph->nodes()) {
    EXPECT_LE(n->fan_in(), 2u);
    if (n->fan_in() == 2) saw_two = true;
  }
  EXPECT_TRUE(saw_two) << "with p=0.9 some node must take two inputs";
}

TEST(RandomDagTest, TreeModeWhenFanInOne) {
  Rng rng(7);
  RandomDagOptions opt;
  opt.node_count = 50;
  opt.max_fan_in = 1;
  auto graph = GenerateRandomDag(opt, &rng);
  for (const Node* n : graph->nodes()) {
    EXPECT_LE(n->fan_in(), 1u);
  }
}

}  // namespace
}  // namespace flexstream

#include "graph/query_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "operators/union_op.h"
#include "queue/queue_op.h"

namespace flexstream {
namespace {

Selection::Predicate True() {
  return [](const Tuple&) { return true; };
}

TEST(NodeTest, KindsAndNames) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  QueueOp* q = g.Add<QueueOp>("q");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  EXPECT_TRUE(src->is_source());
  EXPECT_FALSE(src->is_queue());
  EXPECT_TRUE(q->is_queue());
  EXPECT_TRUE(sink->is_sink());
  EXPECT_EQ(sel->kind(), Node::Kind::kOperator);
  EXPECT_EQ(src->name(), "s");
  EXPECT_EQ(src->graph(), &g);
}

TEST(NodeTest, IdsAreUniqueAndSequential) {
  QueryGraph g;
  Node* a = g.Add<Source>("a");
  Node* b = g.Add<Source>("b");
  EXPECT_NE(a->id(), b->id());
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(NodeTest, MetadataOverrides) {
  QueryGraph g;
  Selection* sel = g.Add<Selection>("f", True());
  EXPECT_FALSE(sel->has_cost_override());
  sel->SetCostMicros(12.5);
  sel->SetSelectivity(0.5);
  sel->SetInterarrivalMicros(100.0);
  EXPECT_EQ(sel->CostMicros(), 12.5);
  EXPECT_EQ(sel->Selectivity(), 0.5);
  EXPECT_EQ(sel->InterarrivalMicros(), 100.0);
  sel->ClearOverrides();
  EXPECT_FALSE(sel->has_cost_override());
  // Back to measured statistics (empty => cost 0, selectivity 1, d = inf).
  EXPECT_EQ(sel->CostMicros(), 0.0);
  EXPECT_EQ(sel->Selectivity(), 1.0);
  EXPECT_TRUE(std::isinf(sel->InterarrivalMicros()));
}

TEST(QueryGraphTest, ConnectBuildsConsistentEdges) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_EQ(src->fan_out(), 1u);
  ASSERT_EQ(sel->fan_in(), 1u);
  EXPECT_EQ(src->outputs()[0].target, sel);
  EXPECT_EQ(sel->inputs()[0].source, src);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(QueryGraphTest, ConnectRejectsBadPort) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  EXPECT_EQ(g.Connect(src, sel, 1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.Connect(src, sel, -1).code(), StatusCode::kOutOfRange);
}

TEST(QueryGraphTest, ConnectRejectsDuplicateEdge) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  ASSERT_TRUE(g.Connect(src, sel).ok());
  EXPECT_EQ(g.Connect(src, sel).code(), StatusCode::kAlreadyExists);
}

TEST(QueryGraphTest, ConnectRejectsSecondProducerOnFixedPort) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  Selection* sel = g.Add<Selection>("f", True());
  ASSERT_TRUE(g.Connect(a, sel).ok());
  EXPECT_EQ(g.Connect(b, sel).code(), StatusCode::kAlreadyExists);
}

TEST(QueryGraphTest, QueueAcceptsMultipleProducers) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  QueueOp* q = g.Add<QueueOp>("q");
  EXPECT_TRUE(g.Connect(a, q).ok());
  EXPECT_TRUE(g.Connect(b, q).ok());
  EXPECT_EQ(q->fan_in(), 2u);
}

TEST(QueryGraphTest, UnionAcceptsMultipleProducers) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  UnionOp* u = g.Add<UnionOp>("u");
  EXPECT_TRUE(g.Connect(a, u).ok());
  EXPECT_TRUE(g.Connect(b, u).ok());
  EXPECT_EQ(g.Connect(a, u, 1).code(), StatusCode::kOutOfRange)
      << "variadic nodes use port 0 only";
}

TEST(QueryGraphTest, JoinPortsAreDistinct) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  SymmetricHashJoin* join = g.Add<SymmetricHashJoin>("j", 1000);
  EXPECT_TRUE(g.Connect(a, join, 0).ok());
  EXPECT_TRUE(g.Connect(b, join, 1).ok());
  EXPECT_EQ(join->fan_in(), 2u);
}

TEST(QueryGraphTest, SelfJoinFromOneSourceUsesBothPorts) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  SymmetricHashJoin* join = g.Add<SymmetricHashJoin>("j", 1000);
  EXPECT_TRUE(g.Connect(a, join, 0).ok());
  EXPECT_TRUE(g.Connect(a, join, 1).ok());
}

TEST(QueryGraphTest, RejectsCycles) {
  QueryGraph g;
  Selection* a = g.Add<Selection>("a", True());
  Selection* b = g.Add<Selection>("b", True());
  Selection* c = g.Add<Selection>("c", True());
  ASSERT_TRUE(g.Connect(a, b).ok());
  ASSERT_TRUE(g.Connect(b, c).ok());
  EXPECT_EQ(g.Connect(c, a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.Connect(a, a).code(), StatusCode::kInvalidArgument);
}

TEST(QueryGraphTest, RejectsEdgeIntoSourceOrOutOfSink) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Source* src2 = g.Add<Source>("s2");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  Selection* sel = g.Add<Selection>("f", True());
  EXPECT_FALSE(g.Connect(src2, src).ok());
  ASSERT_TRUE(g.Connect(src, sink).ok());
  EXPECT_FALSE(g.Connect(sink, sel).ok());
}

TEST(QueryGraphTest, DisconnectRemovesEdge) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  ASSERT_TRUE(g.Connect(src, sel).ok());
  ASSERT_TRUE(g.Disconnect(src, sel).ok());
  EXPECT_EQ(src->fan_out(), 0u);
  EXPECT_EQ(sel->fan_in(), 0u);
  EXPECT_EQ(g.Disconnect(src, sel).code(), StatusCode::kNotFound);
}

TEST(QueryGraphTest, InsertBetweenPreservesPort) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  SymmetricHashJoin* join = g.Add<SymmetricHashJoin>("j", 1000);
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  QueueOp* q = g.Add<QueueOp>("q");
  ASSERT_TRUE(g.InsertBetween(b, q, join).ok());
  // b -> q (port 0), q -> join (port 1).
  ASSERT_EQ(b->outputs().size(), 1u);
  EXPECT_EQ(b->outputs()[0].target, q);
  ASSERT_EQ(q->outputs().size(), 1u);
  EXPECT_EQ(q->outputs()[0].target, join);
  EXPECT_EQ(q->outputs()[0].port, 1);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(QueryGraphTest, InsertBetweenRequiresDisconnectedMiddle) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Selection* s1 = g.Add<Selection>("s1", True());
  Selection* s2 = g.Add<Selection>("s2", True());
  ASSERT_TRUE(g.Connect(a, s1).ok());
  ASSERT_TRUE(g.Connect(s1, s2).ok());
  EXPECT_EQ(g.InsertBetween(a, s2, s1).code(),
            StatusCode::kFailedPrecondition);
}

TEST(QueryGraphTest, SpliceOutRestoresDirectEdge) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Selection* sel = g.Add<Selection>("f", True());
  QueueOp* q = g.Add<QueueOp>("q");
  ASSERT_TRUE(g.Connect(a, sel).ok());
  ASSERT_TRUE(g.InsertBetween(a, q, sel).ok());
  ASSERT_TRUE(g.SpliceOut(q).ok());
  ASSERT_EQ(a->outputs().size(), 1u);
  EXPECT_EQ(a->outputs()[0].target, sel);
  EXPECT_EQ(q->fan_in(), 0u);
  EXPECT_EQ(q->fan_out(), 0u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(QueryGraphTest, SpliceOutWithFanOut) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  QueueOp* q = g.Add<QueueOp>("q");
  Selection* s1 = g.Add<Selection>("s1", True());
  Selection* s2 = g.Add<Selection>("s2", True());
  ASSERT_TRUE(g.Connect(a, q).ok());
  ASSERT_TRUE(g.Connect(q, s1).ok());
  ASSERT_TRUE(g.Connect(q, s2).ok());
  ASSERT_TRUE(g.SpliceOut(q).ok());
  EXPECT_EQ(a->fan_out(), 2u);
  EXPECT_EQ(s1->inputs()[0].source, a);
  EXPECT_EQ(s2->inputs()[0].source, a);
}

TEST(QueryGraphTest, TopologicalOrderRespectsEdges) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* s1 = g.Add<Selection>("s1", True());
  Selection* s2 = g.Add<Selection>("s2", True());
  CollectingSink* sink = g.Add<CollectingSink>("out");
  ASSERT_TRUE(g.Connect(src, s1).ok());
  ASSERT_TRUE(g.Connect(s1, s2).ok());
  ASSERT_TRUE(g.Connect(s2, sink).ok());
  auto order = g.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  auto pos = [&](const Node* n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  EXPECT_LT(pos(src), pos(s1));
  EXPECT_LT(pos(s1), pos(s2));
  EXPECT_LT(pos(s2), pos(sink));
}

TEST(QueryGraphTest, ReachableFollowsDirection) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  ASSERT_TRUE(g.Connect(src, sel).ok());
  EXPECT_TRUE(g.Reachable(src, sel));
  EXPECT_FALSE(g.Reachable(sel, src));
  EXPECT_TRUE(g.Reachable(src, src));
}

TEST(QueryGraphTest, SourcesSinksQueuesEnumeration) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* sel = g.Add<Selection>("f", True());
  QueueOp* q = g.Add<QueueOp>("q");
  QueueOp* unwired = g.Add<QueueOp>("unwired");
  CollectingSink* sink = g.Add<CollectingSink>("out");
  (void)unwired;
  ASSERT_TRUE(g.Connect(src, q).ok());
  ASSERT_TRUE(g.Connect(q, sel).ok());
  ASSERT_TRUE(g.Connect(sel, sink).ok());
  EXPECT_EQ(g.Sources().size(), 1u);
  EXPECT_EQ(g.Sinks().size(), 1u);
  EXPECT_EQ(g.Queues().size(), 1u) << "unwired queues are not listed";
}

TEST(QueryGraphTest, SharedSubqueryFanOut) {
  // The Figure 1 pattern: one join result shared by three consumers.
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  SymmetricHashJoin* join = g.Add<SymmetricHashJoin>("j", 1000);
  ASSERT_TRUE(g.Connect(a, join, 0).ok());
  ASSERT_TRUE(g.Connect(b, join, 1).ok());
  for (int i = 0; i < 3; ++i) {
    Selection* sel = g.Add<Selection>("f" + std::to_string(i), True());
    ASSERT_TRUE(g.Connect(join, sel).ok());
  }
  EXPECT_EQ(join->fan_out(), 3u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(QueryGraphTest, DebugStringMentionsNodes) {
  QueryGraph g;
  Source* src = g.Add<Source>("mysource");
  (void)src;
  EXPECT_NE(g.DebugString().find("mysource"), std::string::npos);
}

}  // namespace
}  // namespace flexstream

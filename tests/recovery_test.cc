// Checkpoint & replay recovery (src/recovery/): epoch barriers, snapshot
// alignment, replay buffers, and end-to-end kill -> rewind -> replay ->
// resume through the StreamEngine.
//
// Runs under the `check-recovery` CMake target (ctest -R "Recovery").

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/query_graph.h"
#include "operators/aggregate.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/symmetric_hash_join.h"
#include "recovery/replay_buffer.h"
#include "recovery/state_snapshot.h"
#include "stats/report.h"
#include "testing/chaos.h"
#include "tuple/tuple.h"

namespace flexstream {
namespace {

constexpr auto kWait = std::chrono::seconds(60);

TEST(EpochBarrierTupleTest, KindEpochAndPrinting) {
  const Tuple barrier = Tuple::EpochBarrier(7);
  EXPECT_TRUE(barrier.is_barrier());
  EXPECT_FALSE(barrier.is_data());
  EXPECT_FALSE(barrier.is_eos());
  EXPECT_EQ(barrier.epoch(), 7u);
  EXPECT_NE(barrier.ToString().find("BARRIER"), std::string::npos);

  EXPECT_FALSE(Tuple::OfInt(1).is_barrier());
  EXPECT_FALSE(Tuple::EndOfStream().is_barrier());
}

TEST(SourceEpochTest, InjectsBarrierEveryInterval) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CollectingSink* sink = qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 0);
  src->ArmEpochs(3, &buffer, &gate);
  EXPECT_TRUE(src->epochs_armed());
  EXPECT_EQ(src->current_epoch(), 1u);

  for (int i = 0; i < 7; ++i) src->Push(Tuple::OfInt(i, i + 1));
  // 7 pushes at interval 3: barriers after elements 3 and 6.
  EXPECT_EQ(src->current_epoch(), 3u);
  EXPECT_EQ(buffer.depth(), 7u);
  src->Close(7);
  EXPECT_EQ(sink->size(), 7u);  // barriers are not data
}

TEST(ReplayBufferTest, RecordsTrimsAndReplays) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CollectingSink* sink = qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 0);
  src->ArmEpochs(2, &buffer, &gate);
  for (int i = 0; i < 6; ++i) src->Push(Tuple::OfInt(i, i + 1));
  src->Close(6);
  EXPECT_EQ(buffer.depth(), 6u);
  EXPECT_EQ(buffer.peak_depth(), 6u);

  // Epochs 1..3 hold two elements each; committing epoch 1 trims its two.
  buffer.TrimThrough(1);
  EXPECT_EQ(buffer.depth(), 4u);

  // Rewind to the committed boundary and replay: the four retained
  // elements (and the Close) are re-pushed, bypassing gate and observer.
  sink->TakeResults();
  graph.ResetAll();
  src->RewindTo(1);
  EXPECT_EQ(src->current_epoch(), 2u);
  src->BeginReplay();
  buffer.Replay();
  src->EndReplay();
  EXPECT_EQ(buffer.depth(), 4u);  // replay retains (for a second failure)
  EXPECT_EQ(buffer.replayed_elements(), 4);
  const std::vector<Tuple> replayed = sink->TakeResults();
  ASSERT_EQ(replayed.size(), 4u);
  EXPECT_EQ(replayed[0], Tuple::OfInt(2, 3));
  EXPECT_TRUE(src->closed_by_driver());
}

TEST(ReplayBufferTest, OverflowMarksTruncated) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  qb.CollectSink(src, "sink");

  std::shared_mutex gate;
  ReplayBuffer buffer(src, 4);
  src->ArmEpochs(100, &buffer, &gate);
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(i, i + 1));
  EXPECT_TRUE(buffer.truncated());
  EXPECT_EQ(buffer.depth(), 4u);  // stops recording at the cap
}

TEST(StatefulOperatorTest, HashJoinSnapshotRestoreRoundTrips) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* left = qb.AddSource("l");
  Source* right = qb.AddSource("r");
  SymmetricHashJoin* join = qb.HashJoin(left, right, "join", 1000);
  CollectingSink* sink = qb.CollectSink(join, "sink");

  left->Push(Tuple::OfInt(1, 10));
  left->Push(Tuple::OfInt(2, 11));
  right->Push(Tuple::OfInt(1, 12));  // joins with left #1
  ASSERT_EQ(sink->size(), 1u);

  auto* stateful = dynamic_cast<StatefulOperator*>(join);
  ASSERT_NE(stateful, nullptr);
  OperatorSnapshot snap = stateful->SnapshotState();
  EXPECT_EQ(snap.element_count, 3);

  // Mutate past the snapshot, then restore: the extra right element must
  // be gone, so a probing push joins only against the snapshot contents.
  right->Push(Tuple::OfInt(2, 13));
  ASSERT_EQ(sink->size(), 2u);
  stateful->RestoreState(snap);
  sink->TakeResults();
  right->Push(Tuple::OfInt(2, 14));
  // Snapshot held left {1,2} and right {1}: a right 2 joins once.
  EXPECT_EQ(sink->TakeResults().size(), 1u);
}

TEST(StatefulOperatorTest, SinksSnapshotAndTruncate) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  CollectingSink* collect = qb.CollectSink(src, "collect");
  CountingSink* count = qb.CountSink(src, "count");

  for (int i = 0; i < 5; ++i) src->Push(Tuple::OfInt(i, i + 1));
  auto* collect_state = dynamic_cast<StatefulOperator*>(collect);
  auto* count_state = dynamic_cast<StatefulOperator*>(count);
  ASSERT_NE(collect_state, nullptr);
  ASSERT_NE(count_state, nullptr);
  OperatorSnapshot collect_snap = collect_state->SnapshotState();
  OperatorSnapshot count_snap = count_state->SnapshotState();
  EXPECT_EQ(collect_snap.element_count, 5);
  EXPECT_EQ(count_snap.element_count, 5);

  for (int i = 5; i < 9; ++i) src->Push(Tuple::OfInt(i, i + 1));
  EXPECT_EQ(count->count(), 9);
  collect_state->RestoreState(collect_snap);
  count_state->RestoreState(count_snap);
  // Restore truncates back to the epoch boundary — exact dedup when the
  // post-snapshot suffix is replayed.
  EXPECT_EQ(collect->size(), 5u);
  EXPECT_EQ(count->count(), 5);
}

TEST(StatefulOperatorTest, WindowedAggregateRoundTrips) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("s");
  WindowedAggregate::Options options;
  options.window_micros = 1000;
  WindowedAggregate* agg = qb.Aggregate(src, "agg", options);
  CollectingSink* sink = qb.CollectSink(agg, "sink");

  for (int i = 0; i < 4; ++i) src->Push(Tuple::OfInt(1, i + 1));
  auto* stateful = dynamic_cast<StatefulOperator*>(agg);
  ASSERT_NE(stateful, nullptr);
  OperatorSnapshot snap = stateful->SnapshotState();

  for (int i = 4; i < 8; ++i) src->Push(Tuple::OfInt(1, i + 1));
  stateful->RestoreState(snap);
  sink->TakeResults();
  // Re-push the suffix: the restored operator must emit exactly what the
  // original did for those elements.
  for (int i = 4; i < 8; ++i) src->Push(Tuple::OfInt(1, i + 1));
  EXPECT_EQ(sink->TakeResults().size(), 4u);
}

// -- End-to-end engine recovery ------------------------------------------

struct Pipeline {
  std::unique_ptr<QueryGraph> graph;
  Source* source = nullptr;
  Source* source2 = nullptr;
  CollectingSink* sink = nullptr;
};

/// source -> select -> join(source2) -> sink: stateful (join) plus a
/// kill-able middle operator ("sel").
Pipeline BuildPipeline() {
  Pipeline p;
  p.graph = std::make_unique<QueryGraph>();
  QueryBuilder qb(p.graph.get());
  p.source = qb.AddSource("src");
  p.source2 = qb.AddSource("src2");
  Selection* sel = qb.Select(p.source, "sel",
                             [](const Tuple&) { return true; });
  SymmetricHashJoin* join =
      qb.HashJoin(sel, p.source2, "join", 1'000'000'000);
  p.sink = qb.CollectSink(join, "sink");
  return p;
}

void Feed(const Pipeline& p, int count) {
  for (int i = 0; i < count; ++i) {
    p.source->Push(Tuple::OfInt(i % 10, i + 1));
    p.source2->Push(Tuple::OfInt(i % 10, i + 1));
  }
  p.source->Close(count);
  p.source2->Close(count);
}

std::vector<Tuple> SortedGolden(int feed) {
  Pipeline p = BuildPipeline();
  Feed(p, feed);
  std::vector<Tuple> golden = p.sink->TakeResults();
  std::sort(golden.begin(), golden.end());
  return golden;
}

TEST(EngineCheckpointTest, EpochsOnMatchesEpochsOff) {
  const int kFeed = 200;
  const std::vector<Tuple> golden = SortedGolden(kFeed);

  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  ASSERT_TRUE(engine.Configure(options).ok());
  ASSERT_TRUE(engine.Start().ok());
  Feed(p, kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok());

  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_GT(engine.recovery()->coordinator().epochs_committed(), 0);
  EXPECT_GT(engine.recovery()->coordinator().snapshots_taken(), 0);
  EXPECT_EQ(engine.recovery()->completed_recoveries(), 0);

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);
}

TEST(EngineRecoveryTest, KillRecoverResumeMatchesGolden) {
  const int kFeed = 200;
  const std::vector<Tuple> golden = SortedGolden(kFeed);

  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.kill_operator = "sel";
  chaos_options.kill_after = 60;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  Feed(p, kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  EXPECT_EQ(chaos.permanent_injections(), 1);
  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_EQ(engine.recovery()->completed_recoveries(), 1);
  EXPECT_GT(engine.recovery()->replayed_elements(), 0);

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);

  // The recovery stats table reflects the run.
  const Table table = BuildRecoveryTable(*engine.recovery());
  EXPECT_GT(table.row_count(), 0u);
}

TEST(EngineRecoveryTest, DoubleKillRecoversTwice) {
  const int kFeed = 200;
  const std::vector<Tuple> golden = SortedGolden(kFeed);

  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  options.checkpoint_epoch_interval = 25;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.kill_operator = "sel";
  chaos_options.kill_after = 40;
  chaos_options.kills = 2;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  Feed(p, kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  EXPECT_EQ(chaos.permanent_injections(), 2);
  ASSERT_NE(engine.recovery(), nullptr);
  EXPECT_EQ(engine.recovery()->completed_recoveries(), 2);

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, golden);
}

TEST(EngineRecoveryTest, ExhaustedAttemptBudgetAborts) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 25;
  options.max_recovery_attempts = 1;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.kill_operator = "sel";
  chaos_options.kill_after = 30;
  chaos_options.kills = 5;  // more deaths than the attempt budget
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  Feed(p, 200);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  // The second death exceeds the budget: the run surfaces the failure
  // instead of looping forever.
  EXPECT_FALSE(engine.RunResult().ok());
  EXPECT_NE(engine.RunResult().message().find("sel"), std::string::npos);
  EXPECT_EQ(engine.recovery()->attempts(), 1);
}

TEST(EngineRecoveryTest, TruncatedReplayBufferDisqualifiesRecovery) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.checkpoint_epoch_interval = 1'000'000;  // nothing ever commits
  options.replay_buffer_max_elements = 8;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.kill_operator = "sel";
  chaos_options.kill_after = 50;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  Feed(p, 200);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_FALSE(engine.RunResult().ok());
  EXPECT_TRUE(engine.recovery()->any_buffer_truncated());
  EXPECT_EQ(engine.recovery()->completed_recoveries(), 0);
}

TEST(RetryBackoffTest, JitteredBackoffAbsorbsTransients) {
  Pipeline p = BuildPipeline();
  StreamEngine engine(p.graph.get());
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  options.retry_backoff.base_micros = 2.0;
  options.retry_backoff.cap_micros = 64.0;
  options.retry_backoff.jitter = 0.5;
  options.retry_backoff.seed = 7;
  ASSERT_TRUE(engine.Configure(options).ok());

  ChaosOptions chaos_options;
  chaos_options.transient_rate = 0.05;
  ChaosInjector chaos(chaos_options);
  chaos.Arm(p.graph.get(), engine.queues());

  ASSERT_TRUE(engine.Start().ok());
  const int kFeed = 200;
  Feed(p, kFeed);
  ASSERT_TRUE(engine.WaitUntilFinishedFor(kWait));
  EXPECT_TRUE(engine.RunResult().ok()) << engine.RunResult().message();
  EXPECT_GT(chaos.transient_injections(), 0);

  std::vector<Tuple> got = p.sink->TakeResults();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, SortedGolden(kFeed));
}

}  // namespace
}  // namespace flexstream

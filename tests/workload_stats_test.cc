// Statistical validation of the workload generators (DESIGN.md §14):
// chi-square goodness-of-fit for Rng::Zipf at several (n, s) pairs and for
// the Poisson arrival process a RateSource phase schedule produces. Seeds
// are fixed, so these are deterministic regression tests — a failure means
// the generator changed, not that the dice were unlucky (thresholds sit at
// the alpha = 0.001 critical values with headroom).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "api/query_builder.h"
#include "graph/query_graph.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "util/random.h"
#include "workload/rate_source.h"

namespace flexstream {
namespace {

/// Pearson chi-square statistic over observed vs expected bin counts.
double ChiSquare(const std::vector<int64_t>& observed,
                 const std::vector<double>& expected) {
  EXPECT_EQ(observed.size(), expected.size());
  double stat = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    EXPECT_GE(expected[i], 5.0) << "bin " << i << " too thin for chi-square";
    const double d = static_cast<double>(observed[i]) - expected[i];
    stat += d * d / expected[i];
  }
  return stat;
}

/// Draws `samples` Zipf(n, s) values and chi-squares them against the exact
/// Zipfian pmf p(k) = k^-s / H_{n,s}, one bin per rank.
double ZipfChiSquare(int64_t n, double s, uint64_t seed, int64_t samples) {
  Rng rng(seed);
  std::vector<int64_t> observed(n, 0);
  for (int64_t i = 0; i < samples; ++i) {
    const int64_t k = rng.Zipf(n, s);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, n);
    ++observed[k - 1];
  }
  double harmonic = 0.0;
  for (int64_t k = 1; k <= n; ++k) harmonic += std::pow(k, -s);
  std::vector<double> expected(n);
  for (int64_t k = 1; k <= n; ++k) {
    expected[k - 1] =
        static_cast<double>(samples) * std::pow(k, -s) / harmonic;
  }
  return ChiSquare(observed, expected);
}

// alpha = 0.001 chi-square critical values: df=9 -> 27.88, df=19 -> 43.82.
// Seeds are fixed, so any margin below the threshold is reproducible.

TEST(ZipfGoodnessOfFitTest, ModerateSkewTenKeys) {
  EXPECT_LT(ZipfChiSquare(10, 0.8, /*seed=*/101, 30000), 27.88);
}

TEST(ZipfGoodnessOfFitTest, HeavySkewTenKeys) {
  EXPECT_LT(ZipfChiSquare(10, 1.2, /*seed=*/202, 30000), 27.88);
}

TEST(ZipfGoodnessOfFitTest, LightSkewTwentyKeys) {
  EXPECT_LT(ZipfChiSquare(20, 0.5, /*seed=*/303, 30000), 43.82);
}

TEST(ZipfGoodnessOfFitTest, SkewActuallySkews) {
  // Sanity beyond fit: the head rank's share must grow with s.
  const int64_t samples = 20000;
  auto head_share = [&](double s) {
    Rng rng(7);
    int64_t head = 0;
    for (int64_t i = 0; i < samples; ++i) {
      if (rng.Zipf(50, s) == 1) ++head;
    }
    return static_cast<double>(head) / static_cast<double>(samples);
  };
  const double light = head_share(0.5);
  const double heavy = head_share(1.2);
  EXPECT_GT(heavy, light + 0.1);
}

/// Runs a RateSource schedule time-scaled to effectively no wall delay and
/// returns the collected application timestamps.
std::vector<AppTime> CollectAppTimes(RateSource::Options options) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  CollectingSink* out = qb.CollectSink(src, "out");
  options.time_scale = 1e9;  // wall pacing collapses; app schedule intact
  RateSource driver(src, options, RateSource::UniformInt(0, 1));
  driver.Run();
  std::vector<AppTime> times;
  for (const Tuple& t : out->TakeResults()) times.push_back(t.timestamp());
  return times;
}

TEST(ArrivalProcessTest, PoissonGapsAreExponential) {
  // One phase at 10k/s: mean gap 100 us. Chi-square the observed app-time
  // gaps against Exponential(100) over 10 equal-probability bins (edges at
  // -mean ln(1 - k/10)); df = 9, alpha = 0.001 critical value 27.88. The
  // +-0.5 us llround() quantization is negligible at this mean.
  RateSource::Options options;
  options.phases = {{20000, 10000.0}};
  options.pacing = RateSource::Pacing::kPoisson;
  options.seed = 4242;
  const std::vector<AppTime> times = CollectAppTimes(options);
  ASSERT_EQ(times.size(), 20000u);

  const double mean = 100.0;
  const int kBins = 10;
  std::vector<double> edges;  // upper edges of bins 0..kBins-2
  for (int k = 1; k < kBins; ++k) {
    edges.push_back(-mean * std::log(1.0 - static_cast<double>(k) / kBins));
  }
  std::vector<int64_t> observed(kBins, 0);
  double gap_sum = 0.0;
  for (size_t i = 1; i < times.size(); ++i) {
    const double gap = static_cast<double>(times[i] - times[i - 1]);
    gap_sum += gap;
    int bin = 0;
    while (bin < kBins - 1 && gap >= edges[bin]) ++bin;
    ++observed[bin];
  }
  const double n = static_cast<double>(times.size() - 1);
  const std::vector<double> expected(kBins, n / kBins);
  EXPECT_LT(ChiSquare(observed, expected), 27.88);
  EXPECT_NEAR(gap_sum / n, mean, 0.05 * mean);
}

TEST(ArrivalProcessTest, ConstantPacingGapsAreExact) {
  RateSource::Options options;
  options.phases = {{1000, 10000.0}};
  options.pacing = RateSource::Pacing::kConstant;
  const std::vector<AppTime> times = CollectAppTimes(options);
  ASSERT_EQ(times.size(), 1000u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], 100) << "gap " << i;
  }
}

TEST(ArrivalProcessTest, PhaseScheduleMeansMatchPerPhaseRates) {
  // Burst schedule shaped like the soak: each leg's observed mean gap must
  // match its own rate — the schedule switches rates, it doesn't smear them.
  RateSource::Options options;
  options.phases = {{4000, 10000.0}, {8000, 40000.0}, {4000, 10000.0}};
  options.pacing = RateSource::Pacing::kPoisson;
  options.seed = 99;
  const std::vector<AppTime> times = CollectAppTimes(options);
  ASSERT_EQ(times.size(), 16000u);
  const struct {
    size_t begin, end;
    double mean_gap;
  } legs[] = {{1, 4000, 100.0}, {4001, 12000, 25.0}, {12001, 16000, 100.0}};
  for (const auto& leg : legs) {
    double sum = 0.0;
    for (size_t i = leg.begin; i < leg.end; ++i) {
      sum += static_cast<double>(times[i] - times[i - 1]);
    }
    const double mean =
        sum / static_cast<double>(leg.end - leg.begin);
    EXPECT_NEAR(mean, leg.mean_gap, 0.08 * leg.mean_gap)
        << "leg [" << leg.begin << ", " << leg.end << ")";
  }
}

TEST(ArrivalProcessTest, SameSeedSameSchedule) {
  RateSource::Options options;
  options.phases = {{2000, 50000.0}};
  options.pacing = RateSource::Pacing::kPoisson;
  options.seed = 777;
  const std::vector<AppTime> a = CollectAppTimes(options);
  const std::vector<AppTime> b = CollectAppTimes(options);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace flexstream

// Histogram, LatencySink, Trace serialization/replay, DOT export.

#include <gtest/gtest.h>

#include <cstdio>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "graph/dot_export.h"
#include "placement/static_queue_placement.h"
#include "stats/capacity.h"
#include "util/histogram.h"
#include "workload/rate_source.h"
#include "workload/trace.h"

namespace flexstream {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(42.0);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.min(), 42.0);
  EXPECT_EQ(h.max(), 42.0);
  EXPECT_NEAR(h.Percentile(0.5), 42.0, 42.0 * 0.08);
}

TEST(HistogramTest, PercentilesOfUniformRamp) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
  // Log buckets give ~7% relative resolution.
  EXPECT_NEAR(h.Percentile(0.5), 5000.0, 5000.0 * 0.1);
  EXPECT_NEAR(h.Percentile(0.95), 9500.0, 9500.0 * 0.1);
  EXPECT_NEAR(h.Percentile(0.0), 1.0, 1.0);
  EXPECT_NEAR(h.Percentile(1.0), 10000.0, 10000.0 * 0.1);
}

TEST(HistogramTest, NegativeAndSubOneGoToUnderflowBucket) {
  Histogram h;
  h.Add(-5.0);
  h.Add(0.5);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.min(), -5.0);
  EXPECT_LE(h.Percentile(0.5), 1.0);
}

TEST(HistogramTest, MergeEqualsCombinedAdds) {
  Histogram a;
  Histogram b;
  Histogram both;
  for (int i = 1; i <= 100; ++i) {
    (i % 2 == 0 ? a : b).Add(static_cast<double>(i * 10));
    both.Add(static_cast<double>(i * 10));
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_NEAR(a.mean(), both.mean(), 1e-9);
  EXPECT_EQ(a.Percentile(0.9), both.Percentile(0.9));
}

TEST(HistogramTest, SummaryMentionsPercentiles) {
  Histogram h;
  h.Add(10.0);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

TEST(LatencySinkTest, MeasuresQueueingDelay) {
  // Elements stamped at emit; the queue is drained only after a known
  // delay, so measured latency must be at least that delay.
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src = qb.AddSource("src");
  QueueOp* q = g.Add<QueueOp>("q");
  ASSERT_TRUE(g.Connect(src, q).ok());
  const TimePoint epoch = Now();
  LatencySink* sink = qb.Latency(q, "lat", /*offset_attr=*/1, epoch);
  // Emit 10 stamped elements.
  RateSource::Options opt;
  opt.phases = {{10, 0.0}};
  opt.stamp_emit_offset = true;
  opt.stamp_epoch = epoch;
  RateSource driver(src, opt, RateSource::UniformInt(0, 9));
  driver.Run();
  SleepUntil(Now() + std::chrono::milliseconds(20));
  q->DrainBatch(100);
  Histogram h = sink->TakeHistogram();
  EXPECT_EQ(h.count(), 10);
  EXPECT_GE(h.min(), 15'000.0) << "must include the 20 ms queueing delay";
  EXPECT_LT(h.max(), 5'000'000.0);
}

TEST(TraceTest, ValueRoundTrip) {
  for (const Value& v :
       {Value(int64_t{-42}), Value(3.25), Value("hello"),
        Value("with space, comma % and\nnewline"), Value(int64_t{0})}) {
    Result<Value> back = DeserializeValue(SerializeValue(v));
    ASSERT_TRUE(back.ok()) << SerializeValue(v);
    EXPECT_EQ(*back, v);
  }
}

TEST(TraceTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DeserializeValue("x:1").ok());
  EXPECT_FALSE(DeserializeValue("i:abc").ok());
  EXPECT_FALSE(DeserializeValue("").ok());
  EXPECT_FALSE(Trace::Deserialize("notanumber i:1").ok());
  EXPECT_FALSE(Trace::Deserialize("5 s:%zz").ok());
}

TEST(TraceTest, TraceRoundTrip) {
  Trace trace;
  trace.Append(Tuple({Value(1), Value(2.5), Value("a,b c")}, 100));
  trace.Append(Tuple({Value(-7)}, 200));
  trace.Append(Tuple(std::vector<Value>{}, 300));
  Result<Trace> back = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, trace);
}

TEST(TraceTest, FileRoundTrip) {
  Trace trace;
  for (int i = 0; i < 50; ++i) {
    trace.Append(Tuple({Value(i), Value("v" + std::to_string(i))}, i * 10));
  }
  const std::string path = "/tmp/flexstream_trace_test.txt";
  ASSERT_TRUE(trace.SaveToFile(path).ok());
  Result<Trace> back = Trace::LoadFromFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, trace);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  EXPECT_EQ(Trace::LoadFromFile("/nonexistent/nope.txt").status().code(),
            StatusCode::kNotFound);
}

TEST(TraceTest, ReplayIntoSourceReproducesStream) {
  Trace trace;
  for (int i = 0; i < 20; ++i) trace.Append(Tuple::OfInt(i, i * 5));
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src = qb.AddSource("src");
  CollectingSink* sink = qb.CollectSink(src, "sink");
  trace.ReplayInto(src);
  EXPECT_EQ(sink->TakeResults(), trace.tuples());
  EXPECT_TRUE(sink->closed());
}

TEST(TraceTest, RecordedStreamReplaysIdentically) {
  // Record a filtered stream, then replay the trace through a fresh graph
  // and check the downstream results agree.
  QueryGraph g1;
  QueryBuilder qb1(&g1);
  Source* src1 = qb1.AddSource("src");
  Node* sel1 = qb1.Select(src1, "sel", Selection::IntAttrLessThan(500));
  CollectingSink* rec = qb1.CollectSink(sel1, "rec");
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    src1->Push(Tuple::OfInt(rng.UniformInt(0, 999), i));
  }
  src1->Close(300);
  Trace trace(rec->TakeResults());

  QueryGraph g2;
  QueryBuilder qb2(&g2);
  Source* src2 = qb2.AddSource("src");
  CountingSink* sink2 = qb2.CountSink(src2, "sink");
  trace.ReplayInto(src2);
  EXPECT_EQ(static_cast<size_t>(sink2->count()), trace.size());
}

TEST(DotExportTest, PlainGraphContainsNodesAndEdges) {
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src = qb.AddSource("my_src");
  Node* sel = qb.Select(src, "my_sel", Selection::IntAttrLessThan(5));
  qb.CountSink(sel, "my_sink");
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("my_src"), std::string::npos);
  EXPECT_NE(dot.find("my_sel"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("house"), std::string::npos) << "source shape";
  EXPECT_NE(dot.find("doublecircle"), std::string::npos) << "sink shape";
}

TEST(DotExportTest, PartitionedGraphHasClusters) {
  QueryGraph g;
  QueryBuilder qb(&g);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  src->SetSelectivity(1.0);
  Node* cheap = qb.Select(src, "cheap", Selection::IntAttrLessThan(5));
  cheap->SetCostMicros(1.0);
  cheap->SetSelectivity(0.5);
  Node* heavy = qb.Select(cheap, "heavy", Selection::IntAttrLessThan(5));
  heavy->SetCostMicros(100'000.0);
  heavy->SetSelectivity(1.0);
  ASSERT_TRUE(PropagateRates(&g).ok());
  Partitioning p = StaticQueuePlacement(g);
  const std::string dot = ToDot(g, p);
  EXPECT_NE(dot.find("subgraph cluster_p0"), std::string::npos);
  EXPECT_NE(dot.find("cheap"), std::string::npos);
}

TEST(DotExportTest, EscapesQuotesInNames) {
  QueryGraph g;
  g.Add<Source>("evil\"name");
  const std::string dot = ToDot(g);
  EXPECT_NE(dot.find("evil\\\"name"), std::string::npos);
}

}  // namespace
}  // namespace flexstream

// Router, Distinct, TumblingAggregate, CountWindowAggregate.

#include <gtest/gtest.h>

#include <deque>

#include "graph/query_graph.h"
#include "operators/count_window_aggregate.h"
#include "operators/distinct.h"
#include "operators/router.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/tumbling_aggregate.h"
#include "util/random.h"

namespace flexstream {
namespace {

TEST(RouterTest, PartitionsStreamAcrossSubscribers) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Router* router = g.Add<Router>(
      "route", [](const Tuple& t) { return static_cast<size_t>(t.IntAt(0)); });
  CollectingSink* sinks[3];
  ASSERT_TRUE(g.Connect(src, router).ok());
  for (int i = 0; i < 3; ++i) {
    sinks[i] = g.Add<CollectingSink>("sink" + std::to_string(i));
    ASSERT_TRUE(g.Connect(router, sinks[i]).ok());
  }
  for (int i = 0; i < 30; ++i) src->Push(Tuple::OfInt(i, i));
  for (int s = 0; s < 3; ++s) {
    auto results = sinks[s]->TakeResults();
    EXPECT_EQ(results.size(), 10u) << "subscriber " << s;
    for (const Tuple& t : results) {
      EXPECT_EQ(t.IntAt(0) % 3, s);
    }
  }
}

TEST(RouterTest, EachElementGoesToExactlyOneSubscriber) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Router* router = g.Add<Router>("route", Router::HashAttr(0));
  CountingSink* a = g.Add<CountingSink>("a");
  CountingSink* b = g.Add<CountingSink>("b");
  ASSERT_TRUE(g.Connect(src, router).ok());
  ASSERT_TRUE(g.Connect(router, a).ok());
  ASSERT_TRUE(g.Connect(router, b).ok());
  for (int i = 0; i < 1000; ++i) src->Push(Tuple::OfInt(i, i));
  EXPECT_EQ(a->count() + b->count(), 1000);
  EXPECT_GT(a->count(), 300) << "hash routing should balance";
  EXPECT_GT(b->count(), 300);
}

TEST(RouterTest, SameKeyAlwaysSameRoute) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Router* router = g.Add<Router>("route", Router::HashAttr(0));
  CollectingSink* a = g.Add<CollectingSink>("a");
  CollectingSink* b = g.Add<CollectingSink>("b");
  ASSERT_TRUE(g.Connect(src, router).ok());
  ASSERT_TRUE(g.Connect(router, a).ok());
  ASSERT_TRUE(g.Connect(router, b).ok());
  for (int i = 0; i < 10; ++i) src->Push(Tuple::OfInt(7, i));
  EXPECT_TRUE(a->size() == 10 || b->size() == 10)
      << "all equal keys must land on one side";
}

TEST(RouterTest, EosStillBroadcasts) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Router* router = g.Add<Router>("route", Router::HashAttr(0));
  CollectingSink* a = g.Add<CollectingSink>("a");
  CollectingSink* b = g.Add<CollectingSink>("b");
  ASSERT_TRUE(g.Connect(src, router).ok());
  ASSERT_TRUE(g.Connect(router, a).ok());
  ASSERT_TRUE(g.Connect(router, b).ok());
  src->Close(1);
  EXPECT_TRUE(a->closed());
  EXPECT_TRUE(b->closed());
}

struct UnaryRig {
  QueryGraph graph;
  Source* src;
  CollectingSink* sink;

  template <typename T, typename... Args>
  T* Wire(Args&&... args) {
    src = graph.Add<Source>("src");
    T* op = graph.Add<T>(std::forward<Args>(args)...);
    sink = graph.Add<CollectingSink>("sink");
    EXPECT_TRUE(graph.Connect(src, op).ok());
    EXPECT_TRUE(graph.Connect(op, sink).ok());
    return op;
  }
};

TEST(DistinctTest, SuppressesDuplicatesInWindow) {
  UnaryRig rig;
  rig.Wire<Distinct>("d", /*window=*/100);
  rig.src->Push(Tuple::OfInt(1, 0));
  rig.src->Push(Tuple::OfInt(1, 10));   // duplicate in window
  rig.src->Push(Tuple::OfInt(2, 20));
  rig.src->Push(Tuple::OfInt(1, 200));  // first copy expired: re-emitted
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].timestamp(), 0);
  EXPECT_EQ(results[1].IntAt(0), 2);
  EXPECT_EQ(results[2].timestamp(), 200);
}

TEST(DistinctTest, KeyAttrsCompareSubset) {
  UnaryRig rig;
  rig.Wire<Distinct>("d", /*window=*/1000, std::vector<size_t>{0});
  rig.src->Push(Tuple({Value(1), Value("a")}, 1));
  rig.src->Push(Tuple({Value(1), Value("b")}, 2));  // same key attr 0
  rig.src->Push(Tuple({Value(2), Value("a")}, 3));
  EXPECT_EQ(rig.sink->size(), 2u);
}

TEST(DistinctTest, SuppressedDuplicatesStillOccupyWindow) {
  UnaryRig rig;
  Distinct* d = rig.Wire<Distinct>("d", /*window=*/100);
  rig.src->Push(Tuple::OfInt(1, 0));
  rig.src->Push(Tuple::OfInt(1, 90));  // suppressed but windowed
  rig.src->Push(Tuple::OfInt(1, 150));
  // At ts 150 the first copy (ts 0) expired but the second (ts 90) is
  // alive, so 150 is still a duplicate.
  EXPECT_EQ(rig.sink->size(), 1u);
  EXPECT_EQ(d->window_size(), 2u);
}

TEST(DistinctTest, ResetClears) {
  UnaryRig rig;
  rig.Wire<Distinct>("d", /*window=*/100);
  rig.src->Push(Tuple::OfInt(1, 0));
  EXPECT_EQ(rig.sink->size(), 1u);
  rig.graph.ResetAll();  // also clears the collecting sink
  rig.src->Push(Tuple::OfInt(1, 1));
  EXPECT_EQ(rig.sink->size(), 1u)
      << "after reset the key is new again and is re-emitted";
}

TEST(TumblingAggregateTest, EmitsOncePerWindow) {
  TumblingAggregate::Options opt;
  opt.kind = AggregateKind::kSum;
  opt.window_micros = 100;
  UnaryRig rig;
  rig.Wire<TumblingAggregate>("t", opt);
  rig.src->Push(Tuple::OfInt(10, 0));
  rig.src->Push(Tuple::OfInt(20, 50));
  EXPECT_EQ(rig.sink->size(), 0u) << "window 0 still open";
  rig.src->Push(Tuple::OfInt(5, 120));  // opens window 1 -> flush window 0
  auto results = rig.sink->Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].DoubleAt(0), 30.0);
  EXPECT_EQ(results[0].timestamp(), 100) << "stamped with window end";
  rig.src->Close(200);  // flush final window
  results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[1].DoubleAt(0), 5.0);
  EXPECT_TRUE(rig.sink->closed());
}

TEST(TumblingAggregateTest, SkippedWindowsEmitNothing) {
  TumblingAggregate::Options opt;
  opt.kind = AggregateKind::kCount;
  opt.window_micros = 10;
  UnaryRig rig;
  rig.Wire<TumblingAggregate>("t", opt);
  rig.src->Push(Tuple::OfInt(1, 5));
  rig.src->Push(Tuple::OfInt(1, 95));  // windows 1..8 empty
  rig.src->Close(100);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].DoubleAt(0), 1.0);
  EXPECT_EQ(results[1].DoubleAt(0), 1.0);
}

TEST(TumblingAggregateTest, GroupByEmitsPerGroupDeterministically) {
  TumblingAggregate::Options opt;
  opt.kind = AggregateKind::kAvg;
  opt.value_attr = 1;
  opt.group_attr = 0;
  opt.window_micros = 100;
  UnaryRig rig;
  rig.Wire<TumblingAggregate>("t", opt);
  rig.src->Push(Tuple({Value(1), Value(10)}, 0));
  rig.src->Push(Tuple({Value(2), Value(40)}, 10));
  rig.src->Push(Tuple({Value(1), Value(20)}, 20));
  rig.src->Close(100);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].IntAt(0), 1);
  EXPECT_EQ(results[0].DoubleAt(1), 15.0);
  EXPECT_EQ(results[1].IntAt(0), 2);
  EXPECT_EQ(results[1].DoubleAt(1), 40.0);
}

TEST(TumblingAggregateTest, MinMax) {
  TumblingAggregate::Options opt;
  opt.kind = AggregateKind::kMin;
  opt.window_micros = 100;
  UnaryRig rig;
  rig.Wire<TumblingAggregate>("t", opt);
  rig.src->Push(Tuple::OfInt(5, 0));
  rig.src->Push(Tuple::OfInt(-3, 10));
  rig.src->Push(Tuple::OfInt(7, 20));
  rig.src->Close(100);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].DoubleAt(0), -3.0);
}

TEST(TumblingAggregateTest, WindowStartStampOption) {
  TumblingAggregate::Options opt;
  opt.kind = AggregateKind::kCount;
  opt.window_micros = 100;
  opt.stamp_window_start = true;
  UnaryRig rig;
  rig.Wire<TumblingAggregate>("t", opt);
  rig.src->Push(Tuple::OfInt(1, 150));
  rig.src->Close(200);
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].timestamp(), 100);
}

TEST(CountWindowAggregateTest, LastNSemantics) {
  CountWindowAggregate::Options opt;
  opt.kind = AggregateKind::kSum;
  opt.window_rows = 3;
  UnaryRig rig;
  rig.Wire<CountWindowAggregate>("c", opt);
  for (int i = 1; i <= 5; ++i) rig.src->Push(Tuple::OfInt(i, i));
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_EQ(results[0].DoubleAt(0), 1.0);         // {1}
  EXPECT_EQ(results[2].DoubleAt(0), 6.0);         // {1,2,3}
  EXPECT_EQ(results[4].DoubleAt(0), 4.0 + 5 + 3);  // {3,4,5}
}

TEST(CountWindowAggregateTest, MinTracksEviction) {
  CountWindowAggregate::Options opt;
  opt.kind = AggregateKind::kMin;
  opt.window_rows = 2;
  UnaryRig rig;
  rig.Wire<CountWindowAggregate>("c", opt);
  rig.src->Push(Tuple::OfInt(1, 1));
  rig.src->Push(Tuple::OfInt(5, 2));
  rig.src->Push(Tuple::OfInt(9, 3));  // 1 evicted -> min {5,9} = 5
  auto results = rig.sink->TakeResults();
  EXPECT_EQ(results[2].DoubleAt(0), 5.0);
}

// Property: count-window sum equals brute-force over random streams.
class CountWindowPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CountWindowPropertyTest, SumMatchesBruteForce) {
  const size_t rows = GetParam();
  CountWindowAggregate::Options opt;
  opt.kind = AggregateKind::kSum;
  opt.window_rows = rows;
  UnaryRig rig;
  rig.Wire<CountWindowAggregate>("c", opt);
  Rng rng(rows);
  std::deque<int64_t> oracle;
  std::vector<double> expected;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.UniformInt(-50, 50);
    oracle.push_back(v);
    if (oracle.size() > rows) oracle.pop_front();
    double sum = 0;
    for (int64_t x : oracle) sum += static_cast<double>(x);
    expected.push_back(sum);
    rig.src->Push(Tuple::OfInt(v, i));
  }
  auto results = rig.sink->TakeResults();
  ASSERT_EQ(results.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(results[i].DoubleAt(0), expected[i], 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CountWindowPropertyTest,
                         ::testing::Values(1, 2, 7, 64, 1000));

}  // namespace
}  // namespace flexstream

// Queue placement: Partitioning invariants, Algorithm 1 (stall-avoiding
// static queue placement), Chain- and Segment-based VO builders, and the
// capacity evaluator — including the paper's Figure 5 scenario.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/query_graph.h"
#include "graph/random_dag.h"
#include "operators/selection.h"
#include "operators/sink.h"
#include "operators/source.h"
#include "operators/union_op.h"
#include "placement/chain_vo_builder.h"
#include "placement/evaluator.h"
#include "placement/partitioning.h"
#include "placement/segment_vo_builder.h"
#include "placement/static_queue_placement.h"
#include "stats/capacity.h"

namespace flexstream {
namespace {

Selection* AddOp(QueryGraph* g, const std::string& name, double cost,
                 double selectivity) {
  Selection* op = g->Add<Selection>(name, [](const Tuple&) { return true; });
  op->SetCostMicros(cost);
  op->SetSelectivity(selectivity);
  return op;
}

TEST(PartitioningTest, AddGroupAndLookup) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* op = AddOp(&g, "op", 1.0, 1.0);
  ASSERT_TRUE(g.Connect(src, op).ok());
  Partitioning p(&g);
  const int id = p.AddGroup({src, op});
  EXPECT_EQ(p.GroupOf(src), id);
  EXPECT_EQ(p.GroupOf(op), id);
  EXPECT_EQ(p.group_count(), 1u);
  EXPECT_TRUE(p.Validate().ok());
}

TEST(PartitioningTest, ValidateRejectsDisconnectedGroup) {
  QueryGraph g;
  Source* a = g.Add<Source>("a");
  Source* b = g.Add<Source>("b");
  Partitioning p(&g);
  p.AddGroup({a, b});  // two sources with no connecting edge
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PartitioningTest, CrossEdgesAreExactlyInterGroupEdges) {
  QueryGraph g;
  Source* src = g.Add<Source>("s");
  Selection* a = AddOp(&g, "a", 1, 1);
  Selection* b = AddOp(&g, "b", 1, 1);
  ASSERT_TRUE(g.Connect(src, a).ok());
  ASSERT_TRUE(g.Connect(a, b).ok());
  Partitioning p(&g);
  p.AddGroup({src, a});
  p.AddGroup({b});
  auto cross = p.CrossEdges();
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0].first, a);
  EXPECT_EQ(static_cast<Node*>(cross[0].second), b);
}

TEST(PartitioningTest, CapacityOfGroupUsesCombinedFormulas) {
  QueryGraph g;
  Selection* a = AddOp(&g, "a", 10, 1);
  Selection* b = AddOp(&g, "b", 20, 1);
  a->SetInterarrivalMicros(100);
  b->SetInterarrivalMicros(100);
  ASSERT_TRUE(g.Connect(a, b).ok());
  Partitioning p(&g);
  const int id = p.AddGroup({a, b});
  EXPECT_NEAR(p.CapacityOf(static_cast<size_t>(id)), 50.0 - 30.0, 1e-9);
}

// The Figure 5 scenario: source -> three cheap unary stateless operators
// -> one expensive aggregation -> sink. The stall-avoiding placement must
// separate the aggregation from the cheap chain.
struct Figure5Rig {
  QueryGraph graph;
  Source* src;
  Selection* cheap[3];
  Selection* aggregation;  // stands in for the expensive aggregation
  CollectingSink* sink;

  Figure5Rig() {
    src = graph.Add<Source>("src");
    src->SetCostMicros(0.0);
    src->SetSelectivity(1.0);
    src->SetInterarrivalMicros(100.0);  // 10k elements/s
    Node* prev = src;
    for (int i = 0; i < 3; ++i) {
      cheap[i] = AddOp(&graph, "u" + std::to_string(i), 5.0, 1.0);
      EXPECT_TRUE(graph.Connect(prev, cheap[i]).ok());
      prev = cheap[i];
    }
    aggregation = AddOp(&graph, "agg", 5000.0, 1.0);  // far too slow
    EXPECT_TRUE(graph.Connect(prev, aggregation).ok());
    sink = graph.Add<CollectingSink>("sink");
    sink->SetCostMicros(0.0);
    sink->SetSelectivity(1.0);
    EXPECT_TRUE(graph.Connect(aggregation, sink).ok());
    EXPECT_TRUE(PropagateRates(&graph).ok());
  }
};

TEST(StaticQueuePlacementTest, Figure5SeparatesExpensiveAggregation) {
  Figure5Rig rig;
  Partitioning p = StaticQueuePlacement(rig.graph);
  EXPECT_TRUE(p.Validate().ok());
  // The cheap chain merges with the source into one partition...
  EXPECT_EQ(p.GroupOf(rig.src), p.GroupOf(rig.cheap[0]));
  EXPECT_EQ(p.GroupOf(rig.cheap[0]), p.GroupOf(rig.cheap[2]));
  // ...while the aggregation is decoupled.
  EXPECT_NE(p.GroupOf(rig.cheap[2]), p.GroupOf(rig.aggregation));
  // And a queue lands exactly on the chain->aggregation edge.
  bool found = false;
  for (const auto& [from, to] : p.CrossEdges()) {
    if (from == rig.cheap[2] && static_cast<Node*>(to) == rig.aggregation) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StaticQueuePlacementTest, AllCheapMergesIntoOnePartition) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  src->SetCostMicros(0);
  src->SetSelectivity(1.0);
  src->SetInterarrivalMicros(1000.0);
  Node* prev = src;
  for (int i = 0; i < 5; ++i) {
    Selection* op = AddOp(&g, "s" + std::to_string(i), 1.0, 1.0);
    ASSERT_TRUE(g.Connect(prev, op).ok());
    prev = op;
  }
  ASSERT_TRUE(PropagateRates(&g).ok());
  Partitioning p = StaticQueuePlacement(g);
  EXPECT_EQ(p.group_count(), 1u)
      << "all operators keep pace; no queue needed";
  EXPECT_TRUE(p.CrossEdges().empty());
}

TEST(StaticQueuePlacementTest, EveryExpensiveIsolatesEveryOperator) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  src->SetCostMicros(0);
  src->SetSelectivity(1.0);
  src->SetInterarrivalMicros(10.0);
  Node* prev = src;
  for (int i = 0; i < 3; ++i) {
    Selection* op = AddOp(&g, "s" + std::to_string(i), 1000.0, 1.0);
    ASSERT_TRUE(g.Connect(prev, op).ok());
    prev = op;
  }
  ASSERT_TRUE(PropagateRates(&g).ok());
  Partitioning p = StaticQueuePlacement(g);
  EXPECT_EQ(p.group_count(), 4u) << "source + 3 singleton operators";
}

TEST(StaticQueuePlacementTest, FirstFitDecreasingPrefersHighCapacity) {
  // A node with two producers but capacity for only one: the
  // higher-capacity producer is merged.
  QueryGraph g;
  Source* fast = g.Add<Source>("fast");
  fast->SetCostMicros(0);
  fast->SetSelectivity(1.0);
  fast->SetInterarrivalMicros(50.0);
  Source* slow = g.Add<Source>("slow");
  slow->SetCostMicros(0);
  slow->SetSelectivity(1.0);
  slow->SetInterarrivalMicros(1000.0);
  // Consumer cheap enough for the slow producer alone, too expensive for
  // the combined rate of both.
  Selection* consumer = AddOp(&g, "c", 40.0, 1.0);
  QueryGraph* gp = &g;
  (void)gp;
  UnionOp* u = g.Add<UnionOp>("u");
  ASSERT_TRUE(g.Connect(fast, u).ok());
  ASSERT_TRUE(g.Connect(slow, u).ok());
  ASSERT_TRUE(g.Connect(u, consumer).ok());
  u->SetCostMicros(0.5);
  u->SetSelectivity(1.0);
  ASSERT_TRUE(PropagateRates(&g).ok());
  Partitioning p = StaticQueuePlacement(g);
  EXPECT_TRUE(p.Validate().ok());
  // The union merges with at least the higher-capacity source; groups stay
  // non-stalling wherever a single node alone is non-stalling.
  for (size_t id = 0; id < p.group_count(); ++id) {
    if (p.group(id).size() > 1) {
      EXPECT_GE(p.CapacityOf(id), 0.0);
    }
  }
}

TEST(StaticQueuePlacementTest, MergedPartitionsNeverStallWhenAvoidable) {
  // Property: on random DAGs, every *merged* (multi-node) partition that
  // Algorithm 1 produces has non-negative capacity (singletons may stall —
  // a single overloaded operator cannot be fixed by placement).
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    RandomDagOptions opt;
    opt.node_count = 60;
    opt.source_count = 3;
    auto graph = GenerateRandomDag(opt, &rng);
    Partitioning p = StaticQueuePlacement(*graph);
    ASSERT_TRUE(p.Validate().ok());
    for (size_t id = 0; id < p.group_count(); ++id) {
      if (p.group(id).size() < 2) continue;
      const double cap = p.CapacityOf(id);
      if (std::isfinite(cap)) {
        EXPECT_GE(cap, -1e-9)
            << "trial " << trial << " group " << id << " stalls";
      }
    }
  }
}

TEST(ChainVoPlacementTest, DecomposesIntoChains) {
  Figure5Rig rig;
  auto chains = DecomposeIntoChains(rig.graph);
  // src starts a chain (fan_in 0) covering the whole unary pipeline.
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].size(), 6u);  // src + 3 cheap + agg + sink
}

TEST(ChainVoPlacementTest, ChainsBreakAtBranches) {
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  Selection* a = AddOp(&g, "a", 1, 1);
  Selection* b1 = AddOp(&g, "b1", 1, 1);
  Selection* b2 = AddOp(&g, "b2", 1, 1);
  ASSERT_TRUE(g.Connect(src, a).ok());
  ASSERT_TRUE(g.Connect(a, b1).ok());
  ASSERT_TRUE(g.Connect(a, b2).ok());
  auto chains = DecomposeIntoChains(g);
  EXPECT_EQ(chains.size(), 3u) << "src->a | b1 | b2";
}

TEST(ChainVoPlacementTest, CoversAllNodes) {
  Rng rng(5);
  RandomDagOptions opt;
  opt.node_count = 80;
  auto graph = GenerateRandomDag(opt, &rng);
  Partitioning p = ChainVoPlacement(*graph);
  EXPECT_TRUE(p.Validate().ok());
  for (Node* n : graph->nodes()) {
    EXPECT_GE(p.GroupOf(n), 0) << n->DebugString();
  }
}

TEST(SegmentVoPlacementTest, SplitsAtLocallyStallingOperator) {
  Figure5Rig rig;
  Partitioning p = SegmentVoPlacement(rig.graph);
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.GroupOf(rig.cheap[0]), p.GroupOf(rig.cheap[2]));
  EXPECT_NE(p.GroupOf(rig.cheap[2]), p.GroupOf(rig.aggregation))
      << "the aggregation cannot keep pace even locally";
}

TEST(SegmentVoPlacementTest, IgnoresCombinedCapacity) {
  // Three operators, each locally fine (cap_local = 10 - 6 = 4 > 0) but
  // combined cap = 10/3 - 18 < 0: the simplified Segment strategy merges
  // them anyway — the weakness Figure 11 exposes.
  QueryGraph g;
  Source* src = g.Add<Source>("src");
  src->SetCostMicros(0);
  src->SetSelectivity(1.0);
  src->SetInterarrivalMicros(10.0);
  Node* prev = src;
  std::vector<Selection*> ops;
  for (int i = 0; i < 3; ++i) {
    Selection* op = AddOp(&g, "s" + std::to_string(i), 6.0, 1.0);
    ASSERT_TRUE(g.Connect(prev, op).ok());
    prev = op;
    ops.push_back(op);
  }
  ASSERT_TRUE(PropagateRates(&g).ok());
  Partitioning segment = SegmentVoPlacement(g);
  EXPECT_EQ(segment.GroupOf(ops[0]), segment.GroupOf(ops[2]))
      << "simplified segment merges locally-fine operators";
  const int group = segment.GroupOf(ops[0]);
  EXPECT_LT(segment.CapacityOf(static_cast<size_t>(group)), 0.0)
      << "...producing a stalling VO";
  // Algorithm 1 on the same graph does not create that stalling VO.
  Partitioning stall_avoiding = StaticQueuePlacement(g);
  for (size_t id = 0; id < stall_avoiding.group_count(); ++id) {
    if (stall_avoiding.group(id).size() >= 2) {
      EXPECT_GE(stall_avoiding.CapacityOf(id), 0.0);
    }
  }
}

TEST(EvaluatorTest, SeparatesNegativeAndPositive) {
  QueryGraph g;
  Selection* a = AddOp(&g, "a", 10, 1);
  a->SetInterarrivalMicros(100);  // cap +90
  Selection* b = AddOp(&g, "b", 200, 1);
  b->SetInterarrivalMicros(100);  // cap -100
  ASSERT_TRUE(g.Connect(a, b).ok());
  Partitioning p(&g);
  p.AddGroup({a});
  p.AddGroup({b});
  CapacityReport report = EvaluateCapacities(p);
  EXPECT_EQ(report.group_count, 2u);
  EXPECT_EQ(report.negative_count, 1u);
  EXPECT_EQ(report.positive_count, 1u);
  EXPECT_NEAR(report.avg_negative_capacity, -100.0, 1e-9);
  EXPECT_NEAR(report.avg_positive_capacity, 90.0, 1e-9);
  EXPECT_NEAR(report.total_capacity, -10.0, 1e-9);
}

TEST(EvaluatorTest, UnboundedCapacityCountedSeparately) {
  QueryGraph g;
  Selection* a = AddOp(&g, "a", 10, 1);  // no inter-arrival metadata
  Partitioning p(&g);
  p.AddGroup({a});
  CapacityReport report = EvaluateCapacities(p);
  EXPECT_EQ(report.unbounded_count, 1u);
  EXPECT_EQ(report.negative_count, 0u);
}

// Figure 11 shape: Algorithm 1's average negative capacity is the least
// negative of the three builders on random DAGs.
TEST(VoBuilderComparisonTest, StallAvoidingHasLeastNegativeCapacity) {
  Rng rng(77);
  double neg_stall = 0.0;
  double neg_chain = 0.0;
  double neg_segment = 0.0;
  for (int trial = 0; trial < 8; ++trial) {
    RandomDagOptions opt;
    opt.node_count = 100;
    opt.source_count = 4;
    auto graph = GenerateRandomDag(opt, &rng);
    neg_stall +=
        EvaluateCapacities(StaticQueuePlacement(*graph)).avg_negative_capacity;
    neg_chain +=
        EvaluateCapacities(ChainVoPlacement(*graph)).avg_negative_capacity;
    neg_segment +=
        EvaluateCapacities(SegmentVoPlacement(*graph)).avg_negative_capacity;
  }
  EXPECT_GE(neg_stall, neg_chain)
      << "Algorithm 1 must stall less than Chain-based VOs";
  EXPECT_GE(neg_stall, neg_segment)
      << "Algorithm 1 must stall less than simplified-Segment VOs";
}

}  // namespace
}  // namespace flexstream

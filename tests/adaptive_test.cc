// Runtime adaptation: the backlog-driven priority controller and
// measured-statistics queue re-placement (the paper's Section 4.2.2
// priority adaptation and Section 5.1.3 runtime placement mechanism).

#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "api/query_builder.h"
#include "api/stream_engine.h"
#include "core/adaptive_placement.h"
#include "core/backlog_controller.h"
#include "util/busy_work.h"

namespace flexstream {
namespace {

TEST(BacklogControllerTest, RaisesPriorityOfBackloggedPartition) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* srcs[2];
  QueueOp* queues[2];
  for (int i = 0; i < 2; ++i) {
    srcs[i] = qb.AddSource("src" + std::to_string(i));
    queues[i] = graph.Add<QueueOp>("q" + std::to_string(i));
    ASSERT_TRUE(graph.Connect(srcs[i], queues[i]).ok());
    qb.CountSink(queues[i], "sink" + std::to_string(i));
  }
  std::vector<HmtsExecutor::PartitionSpec> specs(2);
  specs[0].name = "p0";
  specs[0].queues = {queues[0]};
  specs[1].name = "p1";
  specs[1].queues = {queues[1]};
  HmtsExecutor executor(std::move(specs));
  // Deliberately do NOT start the executor: the backlog stays put so the
  // controller's decision is deterministic.
  for (int i = 0; i < 1000; ++i) srcs[0]->Push(Tuple::OfInt(i, i));

  BacklogController::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.gain = 1.0;
  BacklogController controller(&executor, options);
  controller.Start();
  while (controller.rounds() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  controller.Stop();
  const double p0 =
      executor.thread_scheduler().PriorityOf(&executor.partition(0));
  const double p1 =
      executor.thread_scheduler().PriorityOf(&executor.partition(1));
  EXPECT_GT(p0, p1) << "backlogged partition must be prioritized";
  EXPECT_NEAR(p0, std::log2(1.0 + 1000.0), 0.01);
  EXPECT_NEAR(p1, 0.0, 0.01);
}

TEST(BacklogControllerTest, StartStopIdempotentAndRestartable) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  QueueOp* q = graph.Add<QueueOp>("q");
  ASSERT_TRUE(graph.Connect(src, q).ok());
  qb.CountSink(q, "sink");
  std::vector<HmtsExecutor::PartitionSpec> specs(1);
  specs[0].name = "p0";
  specs[0].queues = {q};
  HmtsExecutor executor(std::move(specs));
  BacklogController controller(&executor, {});
  controller.Stop();  // no-op before start
  controller.Start();
  controller.Stop();
  controller.Start();
  controller.Stop();
  SUCCEED();
}

TEST(SnapshotMeasuredStatsTest, CopiesMeasurementsIntoOverrides) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Node* sel = qb.Select(src, "sel", Selection::IntAttrLessThan(50));
  qb.CountSink(sel, "sink");
  for (int i = 0; i < 100; ++i) src->Push(Tuple::OfInt(i % 100, i));
  EXPECT_FALSE(sel->has_selectivity_override());
  SnapshotMeasuredStats(&graph, /*min_samples=*/16);
  EXPECT_TRUE(sel->has_selectivity_override());
  EXPECT_NEAR(sel->Selectivity(), 0.5, 0.01);
  EXPECT_TRUE(sel->has_cost_override());
}

TEST(SnapshotMeasuredStatsTest, SkipsUnderSampledNodes) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  Node* sel = qb.Select(src, "sel", Selection::IntAttrLessThan(50));
  qb.CountSink(sel, "sink");
  for (int i = 0; i < 5; ++i) src->Push(Tuple::OfInt(i, i));
  SnapshotMeasuredStats(&graph, /*min_samples=*/16);
  EXPECT_FALSE(sel->has_selectivity_override());
}

TEST(AdaptivePlacementTest, StallingPartitionsDetectedFromMetadata) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(100.0);
  Node* cheap = qb.Select(src, "cheap", Selection::IntAttrLessThan(1000));
  cheap->SetCostMicros(1.0);
  cheap->SetSelectivity(1.0);
  qb.CountSink(cheap, "sink");
  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(options).ok());
  EXPECT_TRUE(StallingPartitions(engine).empty());
  // Make the operator look overloaded and re-check.
  cheap->SetCostMicros(10'000.0);
  EXPECT_FALSE(StallingPartitions(engine).empty());
}

TEST(AdaptivePlacementTest, ReplaceRequiresHmts) {
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  qb.CountSink(src, "sink");
  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kGts;
  ASSERT_TRUE(engine.Configure(options).ok());
  EXPECT_EQ(ReplaceFromMeasuredStats(&engine).code(),
            StatusCode::kFailedPrecondition);
}

TEST(AdaptivePlacementTest, ReplacementIsolatesNewlyExpensiveOperator) {
  // Start with metadata claiming everything is cheap -> one partition.
  // Then run traffic that reveals an expensive operator; re-placement
  // from measured statistics must decouple it.
  QueryGraph graph;
  QueryBuilder qb(&graph);
  Source* src = qb.AddSource("src");
  src->SetInterarrivalMicros(500.0);  // 2000 elements/s
  Node* cheap = qb.Select(src, "cheap", Selection::IntAttrLessThan(1'000'000));
  cheap->SetCostMicros(1.0);
  cheap->SetSelectivity(1.0);
  // Actually burns 2 ms/element, but the initial metadata lies.
  Node* hidden = qb.Select(
      cheap, "hidden_expensive", [](const Tuple&) { return true; },
      /*cost=*/2000.0);
  hidden->SetCostMicros(1.0);
  hidden->SetSelectivity(1.0);
  CountingSink* sink = qb.CountSink(hidden, "sink");
  (void)sink;
  (void)cheap;

  StreamEngine engine(&graph);
  EngineOptions options;
  options.mode = ExecutionMode::kHmts;
  ASSERT_TRUE(engine.Configure(options).ok());
  // With the (wrong) cheap metadata, the operators share one partition.
  EXPECT_EQ(engine.partitioning()->GroupOf(cheap),
            engine.partitioning()->GroupOf(hidden));
  ASSERT_TRUE(engine.Start().ok());
  for (int i = 0; i < 50; ++i) src->Push(Tuple::OfInt(i, i * 500));
  // Let the partition process (50 x 2 ms = 100 ms of work).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  // Sources paused: re-place from measurements.
  ASSERT_TRUE(ReplaceFromMeasuredStats(&engine).ok());
  EXPECT_NE(engine.partitioning()->GroupOf(cheap),
            engine.partitioning()->GroupOf(hidden))
      << "measured 2 ms cost must decouple the expensive operator";
  // The stream still completes correctly after the switch.
  for (int i = 50; i < 100; ++i) src->Push(Tuple::OfInt(i, i * 500));
  src->Close(100 * 500);
  engine.WaitUntilFinished();
  EXPECT_EQ(sink->count(), 100);
}

}  // namespace
}  // namespace flexstream
